#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpa::serve {

RequestQueue::Push RequestQueue::try_push(Request& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Push::Closed;
    if (q_.size() >= capacity_) return Push::Full;
    q_.push_back(std::move(r));
  }
  // notify_all, not _one: a worker holding a partial batch waits on the
  // same condition variable, and a single notify could land on it even
  // when the new request belongs to an idle worker's next batch.
  cv_.notify_all();
  return Push::Ok;
}

int RequestQueue::effective_priority(const Request& r, TimePoint now) const {
  // kNoDeadline requests never age (TimePoint::max() minus now would
  // also overflow the duration subtraction).
  if (age_threshold_.count() > 0 && r.deadline != kNoDeadline &&
      r.deadline - now <= age_threshold_) {
    return r.priority + 1;
  }
  return r.priority;
}

std::size_t RequestQueue::select_lead_locked(TimePoint now) {
  // The expired sweep may have drained q_ entirely before we are
  // called; "no lead" is q_.size() == 0 here, and the WRR branch below
  // must not touch oldest.begin() on an empty class map.
  if (q_.empty()) return 0;
  if (weights_.empty()) {
    // Strict priority: the first maximum found is the oldest of the
    // highest effective class (deque order is arrival order).
    std::size_t lead = q_.size();
    int lead_prio = 0;
    for (std::size_t i = 0; i < q_.size(); ++i) {
      const int prio = effective_priority(q_[i], now);
      if (lead == q_.size() || prio > lead_prio) {
        lead = i;
        lead_prio = prio;
      }
    }
    return lead;
  }
  // Smooth weighted round-robin over the classes PRESENT right now:
  // each accrues its weight, the largest credit leads and pays back the
  // round's total, so inter-class service converges to the weight
  // ratios while a lone class just runs (its credit self-cancels).
  // Absent classes accrue nothing — an idle class cannot bank credit
  // and later monopolize the queue. Tie on credit → higher class.
  std::map<int, std::size_t> oldest;  // effective class → oldest index
  for (std::size_t i = 0; i < q_.size(); ++i) {
    oldest.emplace(effective_priority(q_[i], now), i);  // first i wins: FIFO
  }
  // Credit survives only while the class has queued work: a class that
  // drained away forfeits its bank, so a long-absent class cannot
  // return with stale credit and jump the line, and the map stays
  // bounded by the classes actually present (aged +1 classes included).
  for (auto it = credit_.begin(); it != credit_.end();) {
    if (oldest.find(it->first) == oldest.end()) {
      it = credit_.erase(it);
    } else {
      ++it;
    }
  }
  long long round = 0;
  for (const auto& [cls, idx] : oldest) {
    (void)idx;
    const auto w = weights_.find(cls);
    const long long weight = w == weights_.end() ? 1 : static_cast<long long>(w->second);
    credit_[cls] += weight;
    round += weight;
  }
  int winner = oldest.begin()->first;
  for (const auto& [cls, idx] : oldest) {
    (void)idx;
    if (credit_[cls] >= credit_[winner]) winner = cls;  // map ascends: last max = highest class
  }
  credit_[winner] -= round;
  return oldest[winner];
}

void RequestQueue::collect_locked(const BatchKey& key, Index max_batch, TimePoint now,
                                  std::vector<Request>& batch, std::vector<Request>& expired) {
  for (auto it = q_.begin();
       it != q_.end() && static_cast<Index>(batch.size()) < max_batch;) {
    if (now >= it->deadline) {
      expired.push_back(std::move(*it));
      it = q_.erase(it);
    } else if (it->key == key) {
      batch.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
}

bool RequestQueue::pop_batch(Index max_batch, std::chrono::microseconds max_wait,
                             std::vector<Request>& batch, std::vector<Request>& expired) {
  return pop_batch(
      max_batch, [max_wait](const BatchKey&) { return max_wait; }, batch, expired);
}

bool RequestQueue::pop_batch(Index max_batch, const WaitResolver& wait_for,
                             std::vector<Request>& batch, std::vector<Request>& expired) {
  GPA_CHECK(max_batch >= 1, "max_batch must be at least 1");
  batch.clear();
  expired.clear();
  std::unique_lock<std::mutex> lk(mu_);

  // Acquire a lead request: under the fairness policy's class choice,
  // the oldest member of the chosen class (deque order is arrival
  // order — FIFO within a level, which is what keeps equal-priority
  // traffic starvation-free). Expired requests met during the scan are
  // swept out and handed back for rejection; if the sweep empties the
  // queue, deliver those before reporting closure.
  //
  // `lead_time` is the coalescing clock's single anchor: max_wait is
  // measured from the instant the lead was acquired, and NOTHING
  // re-arms it — not cv wakeups, not expired sweeps, not collect
  // passes. The worst-case added latency for the lead is exactly
  // max_wait, regardless of how the queue churns around it.
  TimePoint lead_time{};
  while (batch.empty()) {
    cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) {
      return !expired.empty();  // closed_ must hold here
    }
    // Sweep expired first, as a single compaction pass: per-element
    // erase would shift the tail once per expired request (O(n²) under
    // the queue mutex when a burst of deadlines lapses).
    const TimePoint now = Clock::now();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < q_.size(); ++i) {
      if (now >= q_[i].deadline) {
        expired.push_back(std::move(q_[i]));
      } else {
        if (keep != i) q_[keep] = std::move(q_[i]);
        ++keep;
      }
    }
    q_.resize(keep);
    // Aging evaluated at selection time: a request that sat long enough
    // for its deadline to close within the threshold competes one class
    // up from here on. Lead choice is strict-priority or smooth-WRR
    // (see select_lead_locked); both keep FIFO within a class.
    const std::size_t lead = select_lead_locked(now);
    if (lead < q_.size()) {
      batch.push_back(std::move(q_[lead]));
      q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(lead));
      lead_time = now;
    }
    // Everything scanned had expired: deliver those immediately rather
    // than sleeping on them (prompt rejection beats a stale future).
    if (batch.empty() && !expired.empty()) return true;
  }

  // Fill up with key-compatible requests; wait out the batching window
  // if the batch is short and time remains. Incompatible requests stay
  // queued for other workers (two masks never share a batch). The
  // window itself is the lead key's: per-bucket policies hold
  // long-prompt batches longer than short-prompt ones.
  const BatchKey key = batch.front().key;
  const std::chrono::microseconds max_wait = wait_for(key);
  collect_locked(key, max_batch, Clock::now(), batch, expired);
  if (static_cast<Index>(batch.size()) < max_batch && max_wait.count() > 0) {
    const TimePoint window_end = lead_time + max_wait;
    while (static_cast<Index>(batch.size()) < max_batch && !closed_) {
      // Holding the batch must never cost a member its deadline: if the
      // tightest member deadline falls inside the window, dispatch now
      // (with service headroom) instead of gambling on arrivals.
      TimePoint earliest = TimePoint::max();
      for (const auto& m : batch) earliest = std::min(earliest, m.deadline);
      if (earliest <= window_end) break;
      const auto status = cv_.wait_until(lk, window_end);
      collect_locked(key, max_batch, Clock::now(), batch, expired);
      if (status == std::cv_status::timeout) break;
    }
    // Scheduling-delay safety net: a member whose deadline nevertheless
    // lapsed while we held the batch is shed, not served late with Ok.
    const TimePoint now = Clock::now();
    for (auto it = batch.begin(); it != batch.end();) {
      if (now >= it->deadline) {
        expired.push_back(std::move(*it));
        it = batch.erase(it);
      } else {
        ++it;
      }
    }
  }
  return true;
}

bool RequestQueue::try_pop_one(Request& r) {
  std::lock_guard<std::mutex> lk(mu_);
  if (q_.empty()) return false;
  r = std::move(q_.front());
  q_.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

}  // namespace gpa::serve
