#pragma once
// Dynamic batcher: the policy layer between the request queue and the
// worker pool. The paper's §IV-B observation — batching is a trivial
// scaling axis because every sequence under one mask runs the same
// kernel — is exactly what a dynamic batcher exploits: requests with
// equal BatchKeys (mask fingerprint, seq_len, width, heads, dtype)
// coalesce into one dispatch, following the continuous-batching idiom
// from the serving literature (Orca-style iteration-level scheduling,
// collapsed to whole-request granularity since attention calls here are
// single-shot, not autoregressive).
//
// Two knobs trade throughput against latency:
//   max_batch — occupancy ceiling per dispatch,
//   max_wait  — how long a short batch may hold its slot hoping for
//               compatible arrivals (0 = greedy: dispatch whatever the
//               first scan finds; requests already queued still batch).
//
// max_wait can additionally be set PER BUCKET (bucket_max_wait, aligned
// with seq_buckets): long-prompt buckets amortise kernel cost over far
// more work per item, so holding them a little longer for a fuller
// batch costs relatively less latency than it would for a short-prompt
// bucket. Buckets without an override — and every non-Pattern
// dispatch — fall back to the global max_wait.

#include <chrono>
#include <vector>

#include "serve/request_queue.hpp"

namespace gpa::serve {

struct BatchPolicy {
  Index max_batch = 8;
  std::chrono::microseconds max_wait{200};
  /// seq_len bucket ceilings (ascending) for Pattern requests: a
  /// request's BatchKey carries the smallest ceiling >= its true
  /// length, so near-length requests under one pattern coalesce into
  /// one dispatch. Each item still runs at its own true length (causal
  /// pattern slices are length-independent), so bucketing changes WHO
  /// batches together, never any result bit. Lengths above the last
  /// ceiling — and all lengths when empty — key by exact length.
  std::vector<Index> seq_buckets{};
  /// Per-bucket batching windows, aligned index-for-index with
  /// seq_buckets (empty = the global max_wait applies to every bucket;
  /// otherwise the sizes must match). Only Pattern leads whose key
  /// carries a configured bucket ceiling use the override; everything
  /// else — including Pattern lengths above the last ceiling, which
  /// key by exact length — falls back to max_wait.
  std::vector<std::chrono::microseconds> bucket_max_wait{};
};

/// The smallest bucket ceiling >= len, or len itself when none fits
/// (empty buckets = exact-length batching).
Index bucket_ceiling(const std::vector<Index>& buckets, Index len);

/// The batching window for a batch led by `key`: the bucket's override
/// when the policy has one for key.seq_len (Pattern keys carry the
/// bucket ceiling there), the global max_wait otherwise.
std::chrono::microseconds max_wait_for(const BatchPolicy& policy, const BatchKey& key);

struct PoppedBatch {
  std::vector<Request> batch;    ///< key-compatible, ready to dispatch
  std::vector<Request> expired;  ///< deadline passed; reject, don't run
};

class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, const BatchPolicy& policy);

  /// Blocks for the next batch. False when the queue is closed and
  /// fully drained (worker exit signal). `out` vectors are reused.
  bool next_batch(PoppedBatch& out);

  const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace gpa::serve
