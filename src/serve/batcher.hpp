#pragma once
// Dynamic batcher: the policy layer between the request queue and the
// worker pool. The paper's §IV-B observation — batching is a trivial
// scaling axis because every sequence under one mask runs the same
// kernel — is exactly what a dynamic batcher exploits: requests with
// equal BatchKeys (mask fingerprint, seq_len, width, heads, dtype)
// coalesce into one dispatch, following the continuous-batching idiom
// from the serving literature (Orca-style iteration-level scheduling,
// collapsed to whole-request granularity since attention calls here are
// single-shot, not autoregressive).
//
// Two knobs trade throughput against latency:
//   max_batch — occupancy ceiling per dispatch,
//   max_wait  — how long a short batch may hold its slot hoping for
//               compatible arrivals (0 = greedy: dispatch whatever the
//               first scan finds; requests already queued still batch).

#include <chrono>
#include <vector>

#include "serve/request_queue.hpp"

namespace gpa::serve {

struct BatchPolicy {
  Index max_batch = 8;
  std::chrono::microseconds max_wait{200};
  /// seq_len bucket ceilings (ascending) for Pattern requests: a
  /// request's BatchKey carries the smallest ceiling >= its true
  /// length, so near-length requests under one pattern coalesce into
  /// one dispatch. Each item still runs at its own true length (causal
  /// pattern slices are length-independent), so bucketing changes WHO
  /// batches together, never any result bit. Lengths above the last
  /// ceiling — and all lengths when empty — key by exact length.
  std::vector<Index> seq_buckets{};
};

/// The smallest bucket ceiling >= len, or len itself when none fits
/// (empty buckets = exact-length batching).
Index bucket_ceiling(const std::vector<Index>& buckets, Index len);

struct PoppedBatch {
  std::vector<Request> batch;    ///< key-compatible, ready to dispatch
  std::vector<Request> expired;  ///< deadline passed; reject, don't run
};

class DynamicBatcher {
 public:
  DynamicBatcher(RequestQueue& queue, const BatchPolicy& policy);

  /// Blocks for the next batch. False when the queue is closed and
  /// fully drained (worker exit signal). `out` vectors are reused.
  bool next_batch(PoppedBatch& out);

  const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace gpa::serve
