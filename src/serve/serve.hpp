#pragma once
// Umbrella header for the serving subsystem:
//   request.hpp       — Request / Response / RequestData
//   request_queue.hpp — bounded queue with backpressure and deadlines
//   batcher.hpp       — BatchPolicy / DynamicBatcher
//   server.hpp        — Server (worker pool) + ServerConfig
//   server_stats.hpp  — ServerStats / StatsSnapshot
//   loadgen.hpp       — open/closed-loop load generators

#include "serve/batcher.hpp"
#include "serve/loadgen.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve/server_stats.hpp"
