#pragma once
// Load generation against a Server, in the two canonical disciplines:
//
//   closed-loop — C client threads, each submit → wait → resubmit. The
//     offered load self-throttles to the server's capacity; this is the
//     throughput-ceiling probe ("how many rps can the policy sustain").
//   open-loop — requests arrive on a fixed schedule regardless of
//     completions (one generator thread, futures collected at the end).
//     This is the latency-under-load probe: an overloaded server sheds
//     via admission control instead of stretching the measured tail.
//
// Payloads come from a pre-generated pool and outputs are recycled
// through the Response, so the steady-state loop performs no
// allocation or RNG work — the generator measures the server, not
// itself (load-bearing on a single-core host, where generator work
// steals server cycles).

#include <memory>
#include <vector>

#include "serve/server.hpp"

namespace gpa::serve {

/// A serving workload: one mask OR one causal pattern shared by every
/// request (patterns are architecture) plus a payload pool cycled
/// round-robin. With `pattern` set, requests are RequestKind::Pattern
/// and payload lengths MAY differ across the pool — that is the
/// mixed-length workload seq_len bucketing exists for.
struct Workload {
  std::shared_ptr<const Csr<float>> mask;
  std::shared_ptr<const kvcache::MaskSpec> pattern;
  MultiHeadDims dims{1, 0};
  std::vector<std::shared_ptr<const RequestData>> payloads;
};

/// fig3-style workload: random CSR mask of sparsity `sf` over L×L,
/// `pool` payloads of shape L×d.
Workload make_csr_workload(Index seq_len, Index head_dim, double sf, std::uint64_t seed,
                           int pool = 4);

/// Mixed-length causal local-attention workload: one payload per entry
/// of `lengths` (cycled round-robin by the generators), all under one
/// local(window) pattern. Near-length requests only coalesce when the
/// server's BatchPolicy::seq_buckets says so — this is the workload the
/// bucketed-vs-exact admission comparison runs on.
Workload make_mixed_local_workload(const std::vector<Index>& lengths, Index head_dim,
                                   Index window, std::uint64_t seed);

struct LoadGenConfig {
  Size requests = 1000;
  int clients = 8;            ///< closed-loop concurrency
  double arrival_hz = 0.0;    ///< open-loop schedule (requests per second)
  std::chrono::microseconds deadline{0};  ///< per-request; 0 = none
};

struct LoadGenResult {
  Size completed = 0;  ///< ResponseStatus::Ok
  Size rejected = 0;   ///< every other status
  double wall_s = 0.0;
  double rps = 0.0;    ///< completed / wall_s
};

LoadGenResult run_closed_loop(Server& server, const Workload& wl, const LoadGenConfig& cfg);
LoadGenResult run_open_loop(Server& server, const Workload& wl, const LoadGenConfig& cfg);

}  // namespace gpa::serve
