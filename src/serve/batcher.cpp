#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpa::serve {

Index bucket_ceiling(const std::vector<Index>& buckets, Index len) {
  const auto it = std::lower_bound(buckets.begin(), buckets.end(), len);
  return it == buckets.end() ? len : *it;
}

DynamicBatcher::DynamicBatcher(RequestQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  GPA_CHECK(policy_.max_batch >= 1, "BatchPolicy.max_batch must be at least 1");
  GPA_CHECK(policy_.max_wait.count() >= 0, "BatchPolicy.max_wait must be non-negative");
  GPA_CHECK(std::is_sorted(policy_.seq_buckets.begin(), policy_.seq_buckets.end()),
            "BatchPolicy.seq_buckets must be ascending");
  for (const Index b : policy_.seq_buckets) {
    GPA_CHECK(b >= 1, "BatchPolicy.seq_buckets entries must be positive");
  }
}

bool DynamicBatcher::next_batch(PoppedBatch& out) {
  return queue_.pop_batch(policy_.max_batch, policy_.max_wait, out.batch, out.expired);
}

}  // namespace gpa::serve
