#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpa::serve {

Index bucket_ceiling(const std::vector<Index>& buckets, Index len) {
  const auto it = std::lower_bound(buckets.begin(), buckets.end(), len);
  return it == buckets.end() ? len : *it;
}

std::chrono::microseconds max_wait_for(const BatchPolicy& policy, const BatchKey& key) {
  if (policy.bucket_max_wait.empty() ||
      key.kind != static_cast<std::uint8_t>(RequestKind::Pattern)) {
    return policy.max_wait;
  }
  // A Pattern key's seq_len is the admission-time bucket ceiling, so an
  // exact match identifies the bucket; lengths past the last ceiling
  // keyed by true length miss here and take the global window.
  const auto it =
      std::lower_bound(policy.seq_buckets.begin(), policy.seq_buckets.end(), key.seq_len);
  if (it == policy.seq_buckets.end() || *it != key.seq_len) return policy.max_wait;
  return policy.bucket_max_wait[static_cast<std::size_t>(it - policy.seq_buckets.begin())];
}

DynamicBatcher::DynamicBatcher(RequestQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  GPA_CHECK(policy_.max_batch >= 1, "BatchPolicy.max_batch must be at least 1");
  GPA_CHECK(policy_.max_wait.count() >= 0, "BatchPolicy.max_wait must be non-negative");
  GPA_CHECK(std::is_sorted(policy_.seq_buckets.begin(), policy_.seq_buckets.end()),
            "BatchPolicy.seq_buckets must be ascending");
  for (const Index b : policy_.seq_buckets) {
    GPA_CHECK(b >= 1, "BatchPolicy.seq_buckets entries must be positive");
  }
  GPA_CHECK(policy_.bucket_max_wait.empty() ||
                policy_.bucket_max_wait.size() == policy_.seq_buckets.size(),
            "BatchPolicy.bucket_max_wait must be empty or align with seq_buckets");
  for (const auto w : policy_.bucket_max_wait) {
    GPA_CHECK(w.count() >= 0, "BatchPolicy.bucket_max_wait entries must be non-negative");
  }
}

bool DynamicBatcher::next_batch(PoppedBatch& out) {
  return queue_.pop_batch(
      policy_.max_batch,
      [this](const BatchKey& key) { return max_wait_for(policy_, key); }, out.batch,
      out.expired);
}

}  // namespace gpa::serve
