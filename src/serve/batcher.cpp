#include "serve/batcher.hpp"

#include "common/error.hpp"

namespace gpa::serve {

DynamicBatcher::DynamicBatcher(RequestQueue& queue, const BatchPolicy& policy)
    : queue_(queue), policy_(policy) {
  GPA_CHECK(policy_.max_batch >= 1, "BatchPolicy.max_batch must be at least 1");
  GPA_CHECK(policy_.max_wait.count() >= 0, "BatchPolicy.max_wait must be non-negative");
}

bool DynamicBatcher::next_batch(PoppedBatch& out) {
  return queue_.pop_batch(policy_.max_batch, policy_.max_wait, out.batch, out.expired);
}

}  // namespace gpa::serve
