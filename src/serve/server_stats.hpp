#pragma once
// Thread-safe serving metrics. Counters cover the full admission
// funnel (submitted → accepted → completed/rejected-by-cause), gauges
// track queue depth, and two latency series (end-to-end and service)
// feed the p50/p95/p99 tail summary via benchutil's percentile
// machinery. The batch-occupancy histogram is the direct evidence for
// whether the batching policy actually coalesces work.
//
// Consistency contract: every record_* mutates its coupled fields
// under ONE mutex and snapshot() reads every field in one critical
// section of the same mutex, so a snapshot can never observe torn
// pairs — e.g. completed_ok advanced without the matching latency
// sample, or batches without its occupancy slot. The registry-atomics
// mirror (obs::Registry::global(), `serve.*` names) exists for the
// live scrape path and is monotone-per-metric but NOT a cross-metric
// cut; anything that checks the funnel invariants must read
// snapshot(), not the registry.

#include <mutex>
#include <vector>

#include "benchutil/stats.hpp"
#include "serve/request.hpp"

namespace gpa::serve {

struct StatsSnapshot {
  Size submitted = 0;
  Size completed_ok = 0;
  Size rejected_queue_full = 0;
  Size rejected_deadline = 0;
  Size rejected_shutdown = 0;
  Size rejected_session = 0;
  Size internal_errors = 0;

  Size batches = 0;
  /// occupancy[b] = number of batches dispatched with exactly b
  /// requests (index 0 unused).
  std::vector<Size> occupancy;
  double mean_batch_occupancy = 0.0;

  std::size_t max_queue_depth = 0;

  /// End-to-end (admission → kernel done) and service (dispatch →
  /// kernel done) latency tails, milliseconds.
  benchutil::TailStats latency_ms;
  benchutil::TailStats service_ms;
};

class ServerStats {
 public:
  void record_submitted();
  void record_rejected(ResponseStatus cause);
  void record_internal_error();
  void record_queue_depth(std::size_t depth);
  void record_batch(Index occupancy);
  void record_completion(double total_us, double service_us);

  StatsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  Size submitted_ = 0;
  Size completed_ok_ = 0;
  Size rejected_queue_full_ = 0;
  Size rejected_deadline_ = 0;
  Size rejected_shutdown_ = 0;
  Size rejected_session_ = 0;
  Size internal_errors_ = 0;
  Size batches_ = 0;
  std::vector<Size> occupancy_;
  std::size_t max_queue_depth_ = 0;
  std::vector<double> latency_us_;
  std::vector<double> service_us_;
};

}  // namespace gpa::serve
