#include "serve/server_stats.hpp"

#include "obs/metrics.hpp"

namespace gpa::serve {

namespace {

// Cached references into the global registry so each record_* adds one
// sharded-atomic bump on top of its locked update. The locked fields
// stay the source of truth for StatsSnapshot (the one-lock consistency
// contract in the header); these mirrors are what Op::Stats scrapes.
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& rejected_queue_full;
  obs::Counter& rejected_deadline;
  obs::Counter& rejected_shutdown;
  obs::Counter& rejected_session;
  obs::Counter& internal_errors;
  obs::Counter& batches;
  obs::Counter& batch_items;
  obs::Gauge& queue_depth;
  obs::Histogram& occupancy;
  obs::Histogram& latency_ms;
  obs::Histogram& service_ms;

  static ServeMetrics& get() {
    static ServeMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      const std::vector<double> ms_edges = {0.05, 0.1, 0.25, 0.5, 1,   2.5, 5,
                                            10,   25,  50,   100, 250, 500, 1000};
      return ServeMetrics{reg.counter("serve.requests.submitted"),
                          reg.counter("serve.requests.completed"),
                          reg.counter("serve.requests.rejected.queue_full"),
                          reg.counter("serve.requests.rejected.deadline"),
                          reg.counter("serve.requests.rejected.shutdown"),
                          reg.counter("serve.requests.rejected.session"),
                          reg.counter("serve.errors.internal"),
                          reg.counter("serve.batches"),
                          reg.counter("serve.batch.items"),
                          reg.gauge("serve.queue.depth"),
                          reg.histogram("serve.batch.occupancy",
                                        {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}),
                          reg.histogram("serve.latency_ms", ms_edges),
                          reg.histogram("serve.service_ms", ms_edges)};
    }();
    return m;
  }
};

}  // namespace

void ServerStats::record_submitted() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++submitted_;
  }
  ServeMetrics::get().submitted.inc();
}

void ServerStats::record_rejected(ResponseStatus cause) {
  ServeMetrics& m = ServeMetrics::get();
  std::lock_guard<std::mutex> lk(mu_);
  switch (cause) {
    case ResponseStatus::RejectedQueueFull:
      ++rejected_queue_full_;
      m.rejected_queue_full.inc();
      break;
    case ResponseStatus::RejectedDeadline:
      ++rejected_deadline_;
      m.rejected_deadline.inc();
      break;
    case ResponseStatus::RejectedShutdown:
      ++rejected_shutdown_;
      m.rejected_shutdown.inc();
      break;
    case ResponseStatus::RejectedSession:
      ++rejected_session_;
      m.rejected_session.inc();
      break;
    case ResponseStatus::InternalError:
      ++internal_errors_;
      m.internal_errors.inc();
      break;
    case ResponseStatus::Ok: break;  // not a rejection
  }
}

void ServerStats::record_internal_error() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++internal_errors_;
  }
  ServeMetrics::get().internal_errors.inc();
}

void ServerStats::record_queue_depth(std::size_t depth) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (depth > max_queue_depth_) max_queue_depth_ = depth;
  }
  ServeMetrics::get().queue_depth.set(static_cast<std::int64_t>(depth));
}

void ServerStats::record_batch(Index occupancy) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++batches_;
    const auto slot = static_cast<std::size_t>(occupancy);
    if (occupancy_.size() <= slot) occupancy_.resize(slot + 1, 0);
    ++occupancy_[slot];
  }
  ServeMetrics& m = ServeMetrics::get();
  m.batches.inc();
  m.batch_items.inc(static_cast<std::uint64_t>(occupancy));
  m.occupancy.observe(static_cast<double>(occupancy));
}

void ServerStats::record_completion(double total_us, double service_us) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++completed_ok_;
    latency_us_.push_back(total_us);
    service_us_.push_back(service_us);
  }
  ServeMetrics& m = ServeMetrics::get();
  m.completed.inc();
  m.latency_ms.observe(total_us / 1000.0);
  m.service_ms.observe(service_us / 1000.0);
}

StatsSnapshot ServerStats::snapshot() const {
  std::vector<double> latency, service;
  StatsSnapshot s;
  {
    // One critical section reads every field, and every record_* writes
    // its coupled fields inside the same mutex — a snapshot can never
    // see `completed_ok` advanced without the matching latency samples
    // (pinned by the TSan-covered hammer in test_obs).
    std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.completed_ok = completed_ok_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_deadline = rejected_deadline_;
    s.rejected_shutdown = rejected_shutdown_;
    s.rejected_session = rejected_session_;
    s.internal_errors = internal_errors_;
    s.batches = batches_;
    s.occupancy = occupancy_;
    s.max_queue_depth = max_queue_depth_;
    latency = latency_us_;
    service = service_us_;
  }
  for (auto& x : latency) x /= 1000.0;  // µs → ms
  for (auto& x : service) x /= 1000.0;
  s.latency_ms = benchutil::compute_tail_stats(std::move(latency));
  s.service_ms = benchutil::compute_tail_stats(std::move(service));
  Size weighted = 0;
  for (std::size_t b = 0; b < s.occupancy.size(); ++b) {
    weighted += s.occupancy[b] * static_cast<Size>(b);
  }
  s.mean_batch_occupancy =
      s.batches > 0 ? static_cast<double>(weighted) / static_cast<double>(s.batches) : 0.0;
  return s;
}

}  // namespace gpa::serve
