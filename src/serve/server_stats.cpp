#include "serve/server_stats.hpp"

namespace gpa::serve {

void ServerStats::record_submitted() {
  std::lock_guard<std::mutex> lk(mu_);
  ++submitted_;
}

void ServerStats::record_rejected(ResponseStatus cause) {
  std::lock_guard<std::mutex> lk(mu_);
  switch (cause) {
    case ResponseStatus::RejectedQueueFull: ++rejected_queue_full_; break;
    case ResponseStatus::RejectedDeadline: ++rejected_deadline_; break;
    case ResponseStatus::RejectedShutdown: ++rejected_shutdown_; break;
    case ResponseStatus::RejectedSession: ++rejected_session_; break;
    case ResponseStatus::InternalError: ++internal_errors_; break;
    case ResponseStatus::Ok: break;  // not a rejection
  }
}

void ServerStats::record_internal_error() {
  std::lock_guard<std::mutex> lk(mu_);
  ++internal_errors_;
}

void ServerStats::record_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lk(mu_);
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
}

void ServerStats::record_batch(Index occupancy) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  const auto slot = static_cast<std::size_t>(occupancy);
  if (occupancy_.size() <= slot) occupancy_.resize(slot + 1, 0);
  ++occupancy_[slot];
}

void ServerStats::record_completion(double total_us, double service_us) {
  std::lock_guard<std::mutex> lk(mu_);
  ++completed_ok_;
  latency_us_.push_back(total_us);
  service_us_.push_back(service_us);
}

StatsSnapshot ServerStats::snapshot() const {
  std::vector<double> latency, service;
  StatsSnapshot s;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.completed_ok = completed_ok_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_deadline = rejected_deadline_;
    s.rejected_shutdown = rejected_shutdown_;
    s.rejected_session = rejected_session_;
    s.internal_errors = internal_errors_;
    s.batches = batches_;
    s.occupancy = occupancy_;
    s.max_queue_depth = max_queue_depth_;
    latency = latency_us_;
    service = service_us_;
  }
  for (auto& x : latency) x /= 1000.0;  // µs → ms
  for (auto& x : service) x /= 1000.0;
  s.latency_ms = benchutil::compute_tail_stats(std::move(latency));
  s.service_ms = benchutil::compute_tail_stats(std::move(service));
  Size weighted = 0;
  for (std::size_t b = 0; b < s.occupancy.size(); ++b) {
    weighted += s.occupancy[b] * static_cast<Size>(b);
  }
  s.mean_batch_occupancy =
      s.batches > 0 ? static_cast<double>(weighted) / static_cast<double>(s.batches) : 0.0;
  return s;
}

}  // namespace gpa::serve
