#include "serve/loadgen.hpp"

#include <atomic>
#include <deque>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/build.hpp"
#include "tensor/tensor_ops.hpp"

namespace gpa::serve {

Workload make_csr_workload(Index seq_len, Index head_dim, double sf, std::uint64_t seed,
                           int pool) {
  GPA_CHECK(pool >= 1, "payload pool must hold at least one entry");
  Workload wl;
  wl.mask = std::make_shared<const Csr<float>>(
      build_csr_random(seq_len, RandomParams{sf, seed}));
  Rng rng(seed + 1);
  for (int p = 0; p < pool; ++p) {
    auto data = std::make_shared<RequestData>();
    data->q = Matrix<float>(seq_len, head_dim);
    data->k = Matrix<float>(seq_len, head_dim);
    data->v = Matrix<float>(seq_len, head_dim);
    fill_uniform(data->q, rng);
    fill_uniform(data->k, rng);
    fill_uniform(data->v, rng);
    wl.payloads.push_back(std::move(data));
  }
  return wl;
}

Workload make_mixed_local_workload(const std::vector<Index>& lengths, Index head_dim,
                                   Index window, std::uint64_t seed) {
  GPA_CHECK(!lengths.empty(), "mixed workload needs at least one length");
  Workload wl;
  wl.pattern = std::make_shared<const kvcache::MaskSpec>(
      kvcache::MaskSpec::make_local(LocalParams{window}));
  Rng rng(seed);
  for (const Index L : lengths) {
    GPA_CHECK(L >= 1, "mixed workload lengths must be positive");
    auto data = std::make_shared<RequestData>();
    data->q = Matrix<float>(L, head_dim);
    data->k = Matrix<float>(L, head_dim);
    data->v = Matrix<float>(L, head_dim);
    fill_uniform(data->q, rng);
    fill_uniform(data->k, rng);
    fill_uniform(data->v, rng);
    wl.payloads.push_back(std::move(data));
  }
  return wl;
}

namespace {

Request build_request(const Workload& wl, Size i, const LoadGenConfig& cfg,
                      Matrix<float>&& recycled_output) {
  Request r;
  r.data = wl.payloads[static_cast<std::size_t>(i) % wl.payloads.size()];
  if (wl.pattern != nullptr) {
    r.kind = RequestKind::Pattern;
    r.pattern = wl.pattern;
  } else {
    r.mask = wl.mask;
  }
  r.dims = wl.dims;
  r.output = std::move(recycled_output);
  if (cfg.deadline.count() > 0) r.deadline = Clock::now() + cfg.deadline;
  return r;
}

}  // namespace

LoadGenResult run_closed_loop(Server& server, const Workload& wl, const LoadGenConfig& cfg) {
  GPA_CHECK(cfg.clients >= 1, "closed-loop needs at least one client");
  std::atomic<Size> next{0};
  std::atomic<Size> completed{0};
  std::atomic<Size> rejected{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&] {
      Matrix<float> recycled;  // output buffer round-trips through Response
      for (Size i = next.fetch_add(1); i < cfg.requests; i = next.fetch_add(1)) {
        auto fut = server.submit(build_request(wl, i, cfg, std::move(recycled)));
        Response resp = fut.get();
        recycled = std::move(resp.output);
        if (resp.status == ResponseStatus::Ok) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const auto t1 = Clock::now();

  LoadGenResult res;
  res.completed = completed.load();
  res.rejected = rejected.load();
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();
  res.rps = res.wall_s > 0.0 ? static_cast<double>(res.completed) / res.wall_s : 0.0;
  return res;
}

LoadGenResult run_open_loop(Server& server, const Workload& wl, const LoadGenConfig& cfg) {
  GPA_CHECK(cfg.arrival_hz > 0.0, "open-loop needs a positive arrival rate");
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(
          1.0 / cfg.arrival_hz));

  // Outputs are recycled through a pool bounded by the number of
  // requests actually outstanding (completed futures are reaped between
  // arrivals), so memory stays O(backlog) — not O(total requests) —
  // and the arrival loop never zeroes a fresh L×d buffer in steady
  // state (on a single-core host that work would be stolen from the
  // server being measured).
  LoadGenResult res;
  std::vector<Matrix<float>> pool;
  std::deque<std::future<Response>> pending;
  auto reap = [&](bool block) {
    while (!pending.empty()) {
      auto& f = pending.front();
      if (!block &&
          f.wait_for(std::chrono::seconds{0}) != std::future_status::ready) {
        break;
      }
      Response resp = f.get();
      if (resp.status == ResponseStatus::Ok) {
        ++res.completed;
      } else {
        ++res.rejected;
      }
      pool.push_back(std::move(resp.output));
      pending.pop_front();
    }
  };
  auto take_output = [&]() -> Matrix<float> {
    if (pool.empty()) return Matrix<float>{};
    Matrix<float> m = std::move(pool.back());
    pool.pop_back();
    return m;
  };

  const auto t0 = Clock::now();
  TimePoint next_arrival = t0;
  for (Size i = 0; i < cfg.requests; ++i) {
    std::this_thread::sleep_until(next_arrival);
    next_arrival += interval;
    pending.push_back(server.submit(build_request(wl, i, cfg, take_output())));
    reap(/*block=*/false);
  }
  reap(/*block=*/true);
  const auto t1 = Clock::now();
  res.wall_s = std::chrono::duration<double>(t1 - t0).count();
  res.rps = res.wall_s > 0.0 ? static_cast<double>(res.completed) / res.wall_s : 0.0;
  return res;
}

}  // namespace gpa::serve
