#include "serve/server.hpp"

#include <chrono>

#include "common/error.hpp"
#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/state.hpp"
#include "core/traversal.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"

namespace gpa::serve {

namespace {

namespace trace = obs::trace;

double micros_between(TimePoint a, TimePoint b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

// One 'X' span per item covering [enqueue, dispatch-start] — the queue
// wait is measured from the request's own enqueue_time (same steady
// clock as the trace epoch), back-dated onto the trace axis so it abuts
// the dispatch span that follows.
void emit_queue_wait_spans(const std::vector<Request>& batch, TimePoint t0) {
  if (!trace::enabled()) return;
  const std::int64_t now_tr = trace::now_us();
  const std::int64_t skew = static_cast<std::int64_t>(micros_between(t0, Clock::now()));
  for (const Request& r : batch) {
    const auto wait = static_cast<std::int64_t>(micros_between(r.enqueue_time, t0));
    trace::emit_complete("serve.queue_wait", "serve", now_tr - skew - wait, wait);
  }
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity, cfg.age_threshold, cfg.fairness_weights),
      batcher_(queue_, cfg.policy) {
  GPA_CHECK(cfg_.workers >= 0, "worker count must be non-negative");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::resolve(Request& r, ResponseStatus status) {
  trace::emit_async("serve.request", "serve", 'e', r.id);
  Response resp;
  resp.status = status;
  resp.id = r.id;
  resp.output = std::move(r.output);  // hand the buffer back for recycling
  r.promise.set_value(std::move(resp));
}

std::uint64_t Server::fingerprint_of(const std::shared_ptr<const Csr<float>>& mask) {
  {
    std::lock_guard<std::mutex> lk(fp_mu_);
    const auto it = fp_cache_.find(mask.get());
    if (it != fp_cache_.end()) return it->second.second;
  }
  // Hash outside the lock: the O(nnz) fingerprint of a large mask must
  // not stall every other client's admission behind fp_mu_. The value
  // comes from the mask's TRAVERSAL — the same enumerator the kernels
  // iterate — so "fingerprints equal" means "the kernel visits the same
  // (row → column sequence) map", which is exactly the batching
  // compatibility contract.
  const std::uint64_t fp = MaskTraversal::over(*mask).fingerprint();
  // Cache entries pin their mask, so the cache is capped: a client that
  // streams distinct masks degrades to hashing per submit instead of
  // growing the server's footprint without bound. (A racing submit of
  // the same mask computed the same fp; emplace keeps the first.)
  std::lock_guard<std::mutex> lk(fp_mu_);
  if (fp_cache_.size() < kFpCacheCap) {
    fp_cache_.emplace(mask.get(), std::make_pair(mask, fp));
  }
  return fp;
}

std::future<Response> Server::submit(Request r) {
  auto fut = r.promise.get_future();
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);

  GPA_CHECK(r.data != nullptr, "request needs a payload");
  const RequestData& d = *r.data;
  GPA_CHECK(d.q.same_shape(d.k) && d.q.same_shape(d.v), "request Q/K/V must share one shape");
  if (r.kind == RequestKind::Decode) {
    // One token against a cached session: no mask travels with the
    // request (the session owns it) and the payload is a single row.
    GPA_CHECK(d.q.rows() == 1, "decode requests carry one token (1×d payloads)");
    // Width must match the pool here at admission: dispatch_decode uses
    // the raw-pointer decode_step (no shape re-check), so a mismatched
    // row would read/write out of bounds, not reject.
    GPA_CHECK(cfg_.sessions == nullptr || d.q.cols() == cfg_.sessions->pool().head_dim(),
              "decode payload width must match the session pool's head dimension");
    r.dims = MultiHeadDims{1, d.q.cols()};
  } else if (r.kind == RequestKind::Pattern) {
    GPA_CHECK(r.pattern != nullptr && !r.pattern->components.empty(),
              "pattern requests need a pattern mask");
    GPA_CHECK(r.pattern->max_len() < 0 || d.q.rows() <= r.pattern->max_len(),
              "request longer than the pattern mask allows");
    // Pattern dispatch is single-head causal over the packed width.
    GPA_CHECK(r.dims.head_dim == 0 || (r.dims.num_heads == 1 && r.dims.head_dim == d.q.cols()),
              "pattern requests run single-head over the packed width");
    r.dims = MultiHeadDims{1, d.q.cols()};
  } else {
    GPA_CHECK(r.mask != nullptr, "attention requests need a mask");
    GPA_CHECK(d.q.rows() == r.mask->rows, "request length must match the mask");
    if (r.dims.head_dim == 0) r.dims = MultiHeadDims{1, d.q.cols()};
    GPA_CHECK(r.dims.num_heads >= 1 && r.dims.num_heads * r.dims.head_dim == d.q.cols(),
              "head geometry must tile the packed width");
  }
  if (!r.output.same_shape(d.q)) r.output = Matrix<float>(d.q.rows(), d.q.cols());

  // Past validation: from here every path gives the request a terminal
  // outcome, so the funnel (submitted == completed + rejected + queued)
  // stays balanced — and every path pairs this 'b' with exactly one 'e'
  // (resolve() or the Ok completion loops).
  stats_.record_submitted();
  trace::emit_async("serve.request", "serve", 'b', r.id);

  if (r.kind == RequestKind::Decode && cfg_.sessions == nullptr) {
    // Defensive, not an assert: a deployment without a session backend
    // sheds decode traffic with a typed cause the client can read.
    stats_.record_rejected(ResponseStatus::RejectedSession);
    resolve(r, ResponseStatus::RejectedSession);
    return fut;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    stats_.record_rejected(ResponseStatus::RejectedShutdown);
    resolve(r, ResponseStatus::RejectedShutdown);
    return fut;
  }
  const TimePoint now = Clock::now();
  if (now >= r.deadline) {
    stats_.record_rejected(ResponseStatus::RejectedDeadline);
    resolve(r, ResponseStatus::RejectedDeadline);
    return fut;
  }
  if (r.kind == RequestKind::Decode) {
    // Decode steps coalesce across sessions and lengths: the key only
    // carries the dispatch family and the packed width (see BatchKey).
    r.key = BatchKey{0, 0, d.q.cols(), 1, DType::F32,
                     static_cast<std::uint8_t>(RequestKind::Decode)};
  } else if (r.kind == RequestKind::Pattern) {
    // Bucketed admission: the key's seq_len is the configured bucket
    // CEILING of the true length, so near-length requests under one
    // pattern coalesce. Dispatch runs each item at its own true length
    // (the pattern's causal slices are length-independent), so the
    // relaxed key never changes a result bit.
    r.key = BatchKey{r.pattern->fingerprint(),
                     bucket_ceiling(cfg_.policy.seq_buckets, d.q.rows()), d.q.cols(), 1,
                     DType::F32, static_cast<std::uint8_t>(RequestKind::Pattern)};
  } else {
    r.key = BatchKey{fingerprint_of(r.mask), d.q.rows(), d.q.cols(), r.dims.num_heads,
                     DType::F32, static_cast<std::uint8_t>(RequestKind::Attention)};
  }
  r.enqueue_time = now;

  switch (queue_.try_push(r)) {
    case RequestQueue::Push::Ok:
      stats_.record_queue_depth(queue_.size());
      break;
    case RequestQueue::Push::Full:
      stats_.record_rejected(ResponseStatus::RejectedQueueFull);
      resolve(r, ResponseStatus::RejectedQueueFull);
      break;
    case RequestQueue::Push::Closed:
      stats_.record_rejected(ResponseStatus::RejectedShutdown);
      resolve(r, ResponseStatus::RejectedShutdown);
      break;
  }
  return fut;
}

void Server::dispatch_decode(std::vector<Request>& batch) {
  const auto b = static_cast<Index>(batch.size());
  const TimePoint t0 = Clock::now();
  emit_queue_wait_spans(batch, t0);

  // Hand the whole batch to the session manager's cross-session decode:
  // it groups by session (folds for one session land in arrival/token
  // order, different sessions decode concurrently) and reduces the
  // per-session fold counts through the parallel substrate. The order
  // guarantee is per-dispatch only: a client that pipelines token t+1
  // before token t resolves can see the two land in different batches
  // and fold out of order (see the ordering contract in
  // kvcache/session_manager.hpp — await each step). Per-item failures
  // come back as typed outcomes, never as exceptions.
  using Item = kvcache::SessionManager::DecodeBatchItem;
  std::vector<Item> items(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& r = batch[i];
    items[i] = Item{r.session_id, r.data->q.row(0), r.data->k.row(0), r.data->v.row(0),
                    r.output.row(0)};
  }
  cfg_.sessions->decode_batch(items, cfg_.batch_policy);

  std::vector<ResponseStatus> status(batch.size(), ResponseStatus::Ok);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    switch (items[i].outcome) {
      case Item::Outcome::Ok: break;
      case Item::Outcome::SessionError:
        status[i] = ResponseStatus::RejectedSession;  // unknown / evicted / cache full
        break;
      case Item::Outcome::Error:
        status[i] = ResponseStatus::InternalError;
        break;
    }
  }

  const TimePoint t1 = Clock::now();
  stats_.record_batch(b);
  const double service_us = micros_between(t0, t1);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& r = batch[i];
    if (status[i] != ResponseStatus::Ok) {
      stats_.record_rejected(status[i]);
      resolve(r, status[i]);
      continue;
    }
    const double queue_us = micros_between(r.enqueue_time, t0);
    stats_.record_completion(queue_us + service_us, service_us);
    trace::emit_async("serve.request", "serve", 'e', r.id);
    Response resp;
    resp.status = ResponseStatus::Ok;
    resp.id = r.id;
    resp.output = std::move(r.output);
    resp.queue_us = queue_us;
    resp.service_us = service_us;
    resp.batch_size = b;
    r.promise.set_value(std::move(resp));
  }
}

void Server::dispatch_pattern(std::vector<Request>& batch) {
  const auto b = static_cast<Index>(batch.size());
  const TimePoint t0 = Clock::now();
  emit_queue_wait_spans(batch, t0);
  try {
    // One BatchKey means one pattern fingerprint and one bucket — but
    // the items' TRUE lengths may differ (that is the point of
    // bucketing). Each item folds its own rows through the shared
    // kernel driver at its own length, enumerating the pattern's causal
    // row slices — the same enumerator the one-shot kernels and decode
    // sessions use — so the result equals an exact-length dispatch bit
    // for bit.
    parallel_for(0, b, cfg_.batch_policy, [&](Index i) {
      trace::Span item_span("serve.item", "serve");
      Request& r = batch[static_cast<std::size_t>(i)];
      AttentionOptions o = r.opts;
      o.policy = cfg_.item_policy;
      o.causal = true;  // pattern requests are causal by contract
      SoftmaxState st(r.data->q.rows(), r.data->q.cols());
      detail::run_rows(r.data->q, r.data->k, r.data->v, o, st, [&](Index row, auto&& edge) {
        r.pattern->for_each_causal(row, [&](Index j, float gate) { edge(j, gate); });
      });
      st.finalize_into(r.output);
    });
  } catch (const std::exception&) {
    for (auto& r : batch) {
      stats_.record_internal_error();
      resolve(r, ResponseStatus::InternalError);
    }
    return;
  }
  const TimePoint t1 = Clock::now();
  stats_.record_batch(b);
  const double service_us = micros_between(t0, t1);
  for (auto& r : batch) {
    const double queue_us = micros_between(r.enqueue_time, t0);
    stats_.record_completion(queue_us + service_us, service_us);
    trace::emit_async("serve.request", "serve", 'e', r.id);
    Response resp;
    resp.status = ResponseStatus::Ok;
    resp.id = r.id;
    resp.output = std::move(r.output);
    resp.queue_us = queue_us;
    resp.service_us = service_us;
    resp.batch_size = b;
    r.promise.set_value(std::move(resp));
  }
}

void Server::dispatch(std::vector<Request>& batch) {
  trace::Span dispatch_span("serve.dispatch", "serve");
  if (batch.front().kind == RequestKind::Decode) {
    dispatch_decode(batch);
    return;
  }
  if (batch.front().kind == RequestKind::Pattern) {
    dispatch_pattern(batch);
    return;
  }
  const auto b = static_cast<Index>(batch.size());
  const TimePoint t0 = Clock::now();
  emit_queue_wait_spans(batch, t0);
  try {
    // Every request in the batch shares one BatchKey, hence one mask
    // structure and shape; items are independent sequences, so the
    // cross-item loop is the batch's "grid" dimension.
    parallel_for(0, b, cfg_.batch_policy, [&](Index i) {
      trace::Span item_span("serve.item", "serve");
      Request& r = batch[static_cast<std::size_t>(i)];
      AttentionOptions o = r.opts;
      o.policy = cfg_.item_policy;
      if (r.dims.num_heads > 1) {
        multihead_csr_attention(r.data->q, r.data->k, r.data->v, r.dims, *r.mask, r.output, o);
      } else {
        csr_attention(r.data->q, r.data->k, r.data->v, *r.mask, r.output, o);
      }
    });
  } catch (const std::exception&) {
    for (auto& r : batch) {
      stats_.record_internal_error();
      resolve(r, ResponseStatus::InternalError);
    }
    return;
  }
  const TimePoint t1 = Clock::now();
  stats_.record_batch(b);
  const double service_us = micros_between(t0, t1);
  for (auto& r : batch) {
    const double queue_us = micros_between(r.enqueue_time, t0);
    stats_.record_completion(queue_us + service_us, service_us);
    trace::emit_async("serve.request", "serve", 'e', r.id);
    Response resp;
    resp.status = ResponseStatus::Ok;
    resp.id = r.id;
    resp.output = std::move(r.output);
    resp.queue_us = queue_us;
    resp.service_us = service_us;
    resp.batch_size = b;
    r.promise.set_value(std::move(resp));
  }
}

void Server::worker_loop() {
  PoppedBatch pb;
  while (true) {
    bool got;
    {
      // Covers the batch-lead coalescing window AND idle waiting — a
      // long serve.coalesce span on an unloaded server is the queue
      // sitting empty, not a slow batcher.
      trace::Span coalesce_span("serve.coalesce", "serve");
      got = batcher_.next_batch(pb);
    }
    if (!got) break;
    for (auto& r : pb.expired) {
      stats_.record_rejected(ResponseStatus::RejectedDeadline);
      resolve(r, ResponseStatus::RejectedDeadline);
    }
    if (!pb.batch.empty()) dispatch(pb.batch);
  }
}

void Server::shutdown() {
  std::lock_guard<std::mutex> lk(shutdown_mu_);  // serializes; body is idempotent
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Whatever never got a worker (workers == 0, or pushed in the races
  // around close) still owes its client an answer.
  Request leftover;
  while (queue_.try_pop_one(leftover)) {
    stats_.record_rejected(ResponseStatus::RejectedShutdown);
    resolve(leftover, ResponseStatus::RejectedShutdown);
  }
}

}  // namespace gpa::serve
