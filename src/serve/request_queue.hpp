#pragma once
// Thread-safe bounded request queue with backpressure. try_push never
// blocks — a full queue is an admission-control signal the caller turns
// into RejectedQueueFull, which is what keeps tail latency bounded when
// offered load exceeds capacity (shedding beats unbounded queueing).
//
// pop_batch is the batching primitive: it removes the oldest admissible
// request of the HIGHEST priority present (FIFO within a priority
// level — arrival order breaks ties, so equal-priority traffic is
// starvation-free), then keeps collecting requests with the SAME
// BatchKey — skipping over incompatible ones, which stay queued for
// other workers — until the batch is full or max_wait elapses. The
// key-compatible fill keeps arrival order regardless of priority:
// priority chooses which batch goes NEXT, not who rides along in it.
// Deadline-expired requests encountered during the scan are returned
// separately so the worker can reject them without running the kernel.
//
// Deadline-aware aging: with age_threshold > 0, a request whose
// deadline is within the threshold of now is scheduled one priority
// class higher than it was submitted with (a single bump — urgency
// breaks class boundaries once, it does not trump every class). Aging
// affects lead selection only; within the effective class, arrival
// order still breaks ties, so aged traffic cannot be starved by
// later-arriving requests of the class it aged into.
//
// Weighted fairness: with a non-empty weight map, lead selection runs
// smooth weighted round-robin over the (effective) priority classes
// present in the queue instead of strict priority — each present class
// accrues its weight in credit per selection, the highest credit wins
// and pays back the round's total, so over time class c leads in
// proportion weight(c) / Σ weights of contending classes and no class
// starves. Unlisted classes weigh 1. Credit persists only while a
// class has queued work: a class that drains away forfeits its bank
// (a long-absent class returns on equal footing, and the credit map
// stays bounded by the classes actually present). FIFO within a class
// is unchanged, and an empty weight map keeps the strict
// highest-class-first policy.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace gpa::serve {

class RequestQueue {
 public:
  /// `age_threshold` 0 disables deadline-aware aging; an empty
  /// `weights` map selects strictly by (effective) priority class.
  explicit RequestQueue(std::size_t capacity,
                        std::chrono::microseconds age_threshold = std::chrono::microseconds{0},
                        std::map<int, Index> weights = {})
      : capacity_(capacity), age_threshold_(age_threshold), weights_(std::move(weights)) {}

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  enum class Push : std::uint8_t { Ok, Full, Closed };

  /// Non-blocking admission. Moves from `r` only on Ok.
  Push try_push(Request& r);

  /// Maps the lead's BatchKey to the batching window its batch may hold
  /// a slot for. Called once per batch, after lead acquisition, under
  /// the queue mutex — it must not call back into the queue.
  using WaitResolver = std::function<std::chrono::microseconds(const BatchKey&)>;

  /// Blocks until a request is available (or the queue is closed and
  /// drained — then returns false). On true: `batch` holds 1..max_batch
  /// key-compatible requests, `expired` any deadline-expired requests
  /// met while scanning. Both vectors are cleared first.
  bool pop_batch(Index max_batch, std::chrono::microseconds max_wait,
                 std::vector<Request>& batch, std::vector<Request>& expired);

  /// Same, but the batching window is resolved from the lead's key once
  /// the lead is known — how per-bucket max_wait reaches the queue
  /// without the queue knowing about buckets.
  bool pop_batch(Index max_batch, const WaitResolver& wait_for, std::vector<Request>& batch,
                 std::vector<Request>& expired);

  /// Non-blocking single pop (shutdown drain). True if `r` was filled.
  bool try_pop_one(Request& r);

  /// No further pushes; wakes every waiter. pop_batch keeps handing out
  /// queued requests until empty (drain-on-shutdown semantics).
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Moves key-compatible / expired entries out of q_ (caller holds mu_).
  void collect_locked(const BatchKey& key, Index max_batch, TimePoint now,
                      std::vector<Request>& batch, std::vector<Request>& expired);

  /// Scheduling priority after deadline-aware aging (submitted class +1
  /// when the deadline is within age_threshold_ of `now`).
  int effective_priority(const Request& r, TimePoint now) const;

  /// Index of the lead request under the fairness policy (caller holds
  /// mu_, q_ non-empty): strict highest-effective-class without
  /// weights, smooth WRR over present classes with them.
  std::size_t select_lead_locked(TimePoint now);

  const std::size_t capacity_;
  const std::chrono::microseconds age_threshold_;
  const std::map<int, Index> weights_;
  std::map<int, long long> credit_;  ///< smooth-WRR state (guarded by mu_)
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> q_;
  bool closed_ = false;
};

}  // namespace gpa::serve
