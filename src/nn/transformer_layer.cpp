#include "nn/transformer_layer.hpp"

#include "common/error.hpp"
#include "core/graph_attention.hpp"

namespace gpa::nn {

TransformerLayer::TransformerLayer(TransformerLayerConfig cfg, Csr<float> mask)
    : cfg_(cfg),
      mask_(std::move(mask)),
      wq_(cfg.embed_dim, cfg.embed_dim),
      wk_(cfg.embed_dim, cfg.embed_dim),
      wv_(cfg.embed_dim, cfg.embed_dim),
      wo_(cfg.embed_dim, cfg.embed_dim),
      ffn1_(cfg.embed_dim, cfg.ffn_dim),
      ffn2_(cfg.ffn_dim, cfg.embed_dim),
      ln1_(cfg.embed_dim),
      ln2_(cfg.embed_dim) {
  GPA_CHECK(cfg.embed_dim % cfg.num_heads == 0, "embed_dim must divide into heads");
  GPA_CHECK(mask_.rows == mask_.cols, "attention masks are square");
}

void TransformerLayer::init(Rng& rng) {
  wq_.init(rng);
  wk_.init(rng);
  wv_.init(rng);
  wo_.init(rng);
  ffn1_.init(rng);
  ffn2_.init(rng);
}

void TransformerLayer::forward(const Matrix<float>& x, Matrix<float>& y) const {
  const Index L = x.rows();
  const Index d = cfg_.embed_dim;
  GPA_CHECK(x.cols() == d, "transformer layer: input width mismatch");
  GPA_CHECK(mask_.rows == L, "transformer layer: mask built for a different sequence length");
  GPA_CHECK(y.rows() == L && y.cols() == d, "transformer layer: output shape mismatch");

  // --- Attention block (pre-norm) ---
  Matrix<float> normed(L, d);
  ln1_.apply(x, normed);
  Matrix<float> q(L, d), k(L, d), v(L, d);
  wq_.apply(normed, q);
  wk_.apply(normed, k);
  wv_.apply(normed, v);

  Matrix<float> attn(L, d);
  multihead_csr_attention(q, k, v, MultiHeadDims{cfg_.num_heads, d / cfg_.num_heads}, mask_,
                          attn, cfg_.attention);

  Matrix<float> projected(L, d);
  wo_.apply(attn, projected);
  Matrix<float> h(L, d);
  for (Index i = 0; i < L; ++i) {
    const float* xi = x.row(i);
    const float* pi = projected.row(i);
    float* hi = h.row(i);
    for (Index p = 0; p < d; ++p) hi[p] = xi[p] + pi[p];  // residual
  }

  // --- Feed-forward block (pre-norm) ---
  Matrix<float> normed2(L, d);
  ln2_.apply(h, normed2);
  Matrix<float> mid(L, cfg_.ffn_dim);
  ffn1_.apply(normed2, mid);
  gelu_inplace(mid);
  Matrix<float> ffn_out(L, d);
  ffn2_.apply(mid, ffn_out);
  for (Index i = 0; i < L; ++i) {
    const float* hi = h.row(i);
    const float* fi = ffn_out.row(i);
    float* yi = y.row(i);
    for (Index p = 0; p < d; ++p) yi[p] = hi[p] + fi[p];  // residual
  }
}

Size TransformerLayer::parameter_count() const noexcept {
  const Size d = static_cast<Size>(cfg_.embed_dim);
  const Size f = static_cast<Size>(cfg_.ffn_dim);
  // 4 projections (d² + d each), 2 FFN matrices, 2 layer norms (2d each).
  return 4 * (d * d + d) + (d * f + f) + (f * d + d) + 2 * (2 * d);
}

}  // namespace gpa::nn
