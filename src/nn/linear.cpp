#include "nn/linear.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gpa::nn {

Linear::Linear(Index in_features, Index out_features)
    : weight_(out_features, in_features), bias_(static_cast<std::size_t>(out_features), 0.0f) {
  GPA_CHECK(in_features >= 1 && out_features >= 1, "linear layer needs positive extents");
}

void Linear::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(weight_.rows() + weight_.cols()));
  for (Index i = 0; i < weight_.rows(); ++i) {
    float* row = weight_.row(i);
    for (Index j = 0; j < weight_.cols(); ++j) {
      row[j] = (2.0f * rng.next_float() - 1.0f) * bound;
    }
  }
  for (auto& b : bias_) b = 0.0f;
}

void Linear::apply(const Matrix<float>& x, Matrix<float>& y) const {
  GPA_CHECK(x.cols() == weight_.cols(), "linear: input feature mismatch");
  GPA_CHECK(y.rows() == x.rows() && y.cols() == weight_.rows(), "linear: output shape mismatch");
  for (Index i = 0; i < x.rows(); ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (Index o = 0; o < weight_.rows(); ++o) {
      const float* w = weight_.row(o);
      float acc = bias_[static_cast<std::size_t>(o)];
      for (Index p = 0; p < weight_.cols(); ++p) acc += xi[p] * w[p];
      yi[o] = acc;
    }
  }
}

LayerNorm::LayerNorm(Index features, float eps)
    : gamma_(static_cast<std::size_t>(features), 1.0f),
      beta_(static_cast<std::size_t>(features), 0.0f),
      eps_(eps) {
  GPA_CHECK(features >= 1, "layer norm needs positive width");
}

void LayerNorm::apply(const Matrix<float>& x, Matrix<float>& y) const {
  GPA_CHECK(x.cols() == features(), "layer norm: width mismatch");
  GPA_CHECK(y.rows() == x.rows() && y.cols() == x.cols(), "layer norm: output shape mismatch");
  const Index d = x.cols();
  for (Index i = 0; i < x.rows(); ++i) {
    const float* xi = x.row(i);
    float mean = 0.0f;
    for (Index p = 0; p < d; ++p) mean += xi[p];
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (Index p = 0; p < d; ++p) var += (xi[p] - mean) * (xi[p] - mean);
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps_);
    float* yi = y.row(i);
    for (Index p = 0; p < d; ++p) {
      yi[p] = (xi[p] - mean) * inv * gamma_[static_cast<std::size_t>(p)] +
              beta_[static_cast<std::size_t>(p)];
    }
  }
}

void gelu_inplace(Matrix<float>& x) {
  float* p = x.data();
  const std::size_t n = static_cast<std::size_t>(x.rows()) * static_cast<std::size_t>(x.cols());
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = 0.5f * p[i] * (1.0f + std::erf(p[i] * 0.70710678f));
  }
}

}  // namespace gpa::nn
