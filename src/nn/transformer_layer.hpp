#pragma once
// A complete pre-norm transformer encoder layer hosting the graph-
// processing attention kernels — the "seamless integration into existing
// LLMs" deliverable, in C++:
//
//   h = x + W_O · MultiHeadGraphAttention(LN1(x))
//   y = h + W2 · GELU(W1 · LN2(h))
//
// The attention mask is part of the layer configuration (a ComposedMask
// preset or any CSR mask), exactly how Longformer/BigBird wire their
// sparse patterns into each layer.

#include <memory>

#include "core/attention_options.hpp"
#include "core/multihead.hpp"
#include "nn/linear.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa::nn {

struct TransformerLayerConfig {
  Index embed_dim = 64;
  Index num_heads = 4;
  Index ffn_dim = 256;
  AttentionOptions attention;
};

class TransformerLayer {
 public:
  /// The mask is shared across heads and batch items; it must be L×L for
  /// every sequence passed to forward.
  TransformerLayer(TransformerLayerConfig cfg, Csr<float> mask);

  /// Deterministic parameter initialisation.
  void init(Rng& rng);

  /// x: L×embed_dim -> y: L×embed_dim.
  void forward(const Matrix<float>& x, Matrix<float>& y) const;

  const TransformerLayerConfig& config() const noexcept { return cfg_; }
  const Csr<float>& mask() const noexcept { return mask_; }

  /// Total learnable parameter count.
  Size parameter_count() const noexcept;

 private:
  TransformerLayerConfig cfg_;
  Csr<float> mask_;
  Linear wq_, wk_, wv_, wo_;
  Linear ffn1_, ffn2_;
  LayerNorm ln1_, ln2_;
};

}  // namespace gpa::nn
