#pragma once
// Minimal dense layers for the transformer-layer integration demo. The
// paper ships its kernels as a PyTorch extension so they can drop into
// existing LLMs; this module is the C++ analogue — just enough model
// plumbing (linear, layer norm, GELU MLP) to host the attention kernels
// inside a real encoder layer.

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace gpa::nn {

/// y = x · Wᵀ + b  (x: L×in, W: out×in, b: out).
class Linear {
 public:
  Linear() = default;
  Linear(Index in_features, Index out_features);

  /// Xavier-uniform init, deterministic per rng stream.
  void init(Rng& rng);

  void apply(const Matrix<float>& x, Matrix<float>& y) const;

  Index in_features() const noexcept { return weight_.cols(); }
  Index out_features() const noexcept { return weight_.rows(); }
  Matrix<float>& weight() noexcept { return weight_; }
  std::vector<float>& bias() noexcept { return bias_; }

 private:
  Matrix<float> weight_;
  std::vector<float> bias_;
};

/// Row-wise layer normalisation with learnable gain/offset.
class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(Index features, float eps = 1e-5f);

  void apply(const Matrix<float>& x, Matrix<float>& y) const;

  Index features() const noexcept { return static_cast<Index>(gamma_.size()); }

 private:
  std::vector<float> gamma_;
  std::vector<float> beta_;
  float eps_ = 1e-5f;
};

/// Exact GELU, applied element-wise in place.
void gelu_inplace(Matrix<float>& x);

}  // namespace gpa::nn
