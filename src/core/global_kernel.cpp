#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void global_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                 const GlobalMinusLocalParams& p, SoftmaxState& state,
                                 const AttentionOptions& opts) {
  const Index seq_len = q.rows();
  for (const Index t : p.global.tokens) {
    GPA_CHECK(t >= 0 && t < seq_len, "global token index out of range");
  }
  const MaskTraversal tr = MaskTraversal::global(p);  // validates the window
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void global_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                      const GlobalMinusLocalParams& p, Matrix<T>& out,
                      const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  global_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void global_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                          const Matrix<float>&, const GlobalMinusLocalParams&,
                                          SoftmaxState&, const AttentionOptions&);
template void global_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                          const Matrix<half_t>&, const GlobalMinusLocalParams&,
                                          SoftmaxState&, const AttentionOptions&);
template void global_attention(const Matrix<float>&, const Matrix<float>&,
                               const Matrix<float>&, const GlobalMinusLocalParams&,
                               Matrix<float>&, const AttentionOptions&);
template void global_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                               const Matrix<half_t>&, const GlobalMinusLocalParams&,
                               Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
