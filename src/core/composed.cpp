#include "core/composed.hpp"

#include "common/error.hpp"
#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void composed_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                        const ComposedMask& mask, Matrix<T>& out,
                        const AttentionOptions& opts) {
  GPA_CHECK(mask.seq_len == q.rows(), "composed mask length mismatch");
  SoftmaxState state(q.rows(), v.cols());
  // One row-parallel pass folding every component's edges per row, in
  // composition order. Per row this is the same fold sequence as the
  // historical one-kernel-call-per-component chain (rows are
  // independent, so interleaving across rows cannot reorder a row's
  // folds) — bit-identical output — but Q is swept once instead of once
  // per component, and each row's (m, l) stays in registers across the
  // whole union.
  const std::vector<MaskTraversal> components = traversals_of(mask, /*owning=*/false);
  detail::run_rows(q, k, v, opts, state, components);  // Auto resolves over summed degrees
  state.finalize_into(out);
}

template <typename T>
void fused_csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const ComposedMask& mask, Matrix<T>& out,
                         const AttentionOptions& opts) {
  GPA_CHECK(mask.seq_len == q.rows(), "composed mask length mismatch");
  csr_attention(q, k, v, mask.fused, out, opts);
}

template void composed_attention(const Matrix<float>&, const Matrix<float>&,
                                 const Matrix<float>&, const ComposedMask&, Matrix<float>&,
                                 const AttentionOptions&);
template void composed_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                 const Matrix<half_t>&, const ComposedMask&, Matrix<half_t>&,
                                 const AttentionOptions&);
template void fused_csr_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const ComposedMask&, Matrix<float>&,
                                  const AttentionOptions&);
template void fused_csr_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const ComposedMask&, Matrix<half_t>&,
                                  const AttentionOptions&);

}  // namespace gpa
