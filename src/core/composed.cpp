#include "core/composed.hpp"

#include "common/error.hpp"
#include "core/graph_attention.hpp"

namespace gpa {

template <typename T>
void composed_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                        const ComposedMask& mask, Matrix<T>& out,
                        const AttentionOptions& opts) {
  GPA_CHECK(mask.seq_len == q.rows(), "composed mask length mismatch");
  SoftmaxState state(q.rows(), v.cols());
  for (const MaskComponent& c : mask.components) {
    switch (c.kind) {
      case MaskComponent::Kind::Local:
        local_attention_accumulate(q, k, v, c.local, state, opts);
        break;
      case MaskComponent::Kind::Dilated1D:
        dilated1d_attention_accumulate(q, k, v, c.dilated, state, opts);
        break;
      case MaskComponent::Kind::GlobalMinusLocal:
        // The dilated-Longformer preset subtracts a non-window component
        // from the global mask, which the implicit kernel cannot express;
        // those components carry their exact edges in c.csr instead.
        if (c.global.local.window > 1) {
          global_attention_accumulate(q, k, v, c.global, state, opts);
        } else {
          csr_attention_accumulate(q, k, v, c.csr, state, opts);
        }
        break;
      case MaskComponent::Kind::RandomCsr:
        csr_attention_accumulate(q, k, v, c.csr, state, opts);
        break;
    }
  }
  state.finalize_into(out);
}

template <typename T>
void fused_csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const ComposedMask& mask, Matrix<T>& out,
                         const AttentionOptions& opts) {
  GPA_CHECK(mask.seq_len == q.rows(), "composed mask length mismatch");
  csr_attention(q, k, v, mask.fused, out, opts);
}

template void composed_attention(const Matrix<float>&, const Matrix<float>&,
                                 const Matrix<float>&, const ComposedMask&, Matrix<float>&,
                                 const AttentionOptions&);
template void composed_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                 const Matrix<half_t>&, const ComposedMask&, Matrix<half_t>&,
                                 const AttentionOptions&);
template void fused_csr_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const ComposedMask&, Matrix<float>&,
                                  const AttentionOptions&);
template void fused_csr_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const ComposedMask&, Matrix<half_t>&,
                                  const AttentionOptions&);

}  // namespace gpa
