#include "core/state.hpp"

#include <limits>

#include "common/error.hpp"

namespace gpa {

void SoftmaxState::reset(Index seq_len, Index head_dim) {
  GPA_CHECK(seq_len >= 0 && head_dim >= 0, "state extents must be non-negative");
  acc_ = Matrix<float>(seq_len, head_dim);
  acc_.zero();
  m_.assign(static_cast<std::size_t>(seq_len), -std::numeric_limits<float>::infinity());
  l_.assign(static_cast<std::size_t>(seq_len), 0.0f);
}

namespace {
template <typename T>
void finalize_impl(const Matrix<float>& acc, const std::vector<float>& l, Matrix<T>& out) {
  GPA_CHECK(out.rows() == acc.rows() && out.cols() == acc.cols(),
            "finalize: output shape mismatch");
  for (Index i = 0; i < acc.rows(); ++i) {
    const float li = l[static_cast<std::size_t>(i)];
    const float inv = li > 0.0f ? 1.0f / li : 0.0f;
    const float* src = acc.row(i);
    T* dst = out.row(i);
    for (Index j = 0; j < acc.cols(); ++j) dst[j] = T(src[j] * inv);
  }
}
}  // namespace

void SoftmaxState::finalize_into(Matrix<float>& out) const { finalize_impl(acc_, l_, out); }
void SoftmaxState::finalize_into(Matrix<half_t>& out) const { finalize_impl(acc_, l_, out); }

}  // namespace gpa
