#include "core/backward.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/state.hpp"
#include "parallel/parallel_for.hpp"
#include "sparse/transpose.hpp"

namespace gpa {

void AttentionCache::reset(Index seq_len, Index head_dim) {
  out = Matrix<float>(seq_len, head_dim);
  m.assign(static_cast<std::size_t>(seq_len), -std::numeric_limits<float>::infinity());
  l.assign(static_cast<std::size_t>(seq_len), 0.0f);
}

void AttentionGrads::reset(Index seq_len, Index head_dim) {
  dq = Matrix<float>(seq_len, head_dim);
  dk = Matrix<float>(seq_len, head_dim);
  dv = Matrix<float>(seq_len, head_dim);
  dq.zero();
  dk.zero();
  dv.zero();
}

namespace {

/// Runs the inference kernel, then copies (O, m, l) out of the state.
template <typename AccumulateFn>
void forward_with_cache(Index seq_len, Index head_dim, AttentionCache& cache,
                        AccumulateFn&& accumulate) {
  cache.reset(seq_len, head_dim);
  SoftmaxState state(seq_len, head_dim);
  accumulate(state);
  state.finalize_into(cache.out);
  for (Index i = 0; i < seq_len; ++i) {
    cache.m[static_cast<std::size_t>(i)] = state.m(i);
    cache.l[static_cast<std::size_t>(i)] = state.l(i);
  }
}

/// Per-row D_i = dO_i · O_i.
std::vector<float> row_dots(const Matrix<float>& dout, const Matrix<float>& out) {
  std::vector<float> d(static_cast<std::size_t>(dout.rows()));
  for (Index i = 0; i < dout.rows(); ++i) {
    const float* a = dout.row(i);
    const float* b = out.row(i);
    float acc = 0.0f;
    for (Index p = 0; p < dout.cols(); ++p) acc += a[p] * b[p];
    d[static_cast<std::size_t>(i)] = acc;
  }
  return d;
}

inline float prob_of_edge(const float* qi, const float* kj, Index d, float scale, float m_i,
                          float inv_l_i) {
  float s = 0.0f;
  for (Index p = 0; p < d; ++p) s += qi[p] * kj[p];
  return std::exp(s * scale - m_i) * inv_l_i;
}

void check_training_opts(const AttentionOptions& opts) {
  GPA_CHECK(!opts.use_mask_values, "weighted masks are not supported in training");
}

void check_backward_shapes(const Matrix<float>& q, const Matrix<float>& k,
                           const Matrix<float>& v, const AttentionCache& cache,
                           const Matrix<float>& dout) {
  GPA_CHECK(q.same_shape(k) && q.same_shape(v), "backward: Q/K/V shape mismatch");
  GPA_CHECK(dout.same_shape(q), "backward: dO shape mismatch");
  GPA_CHECK(cache.out.same_shape(q) &&
                cache.m.size() == static_cast<std::size_t>(q.rows()) &&
                cache.l.size() == static_cast<std::size_t>(q.rows()),
            "backward: cache does not match inputs — run the cached forward first");
}

}  // namespace

void csr_attention_forward(const Matrix<float>& q, const Matrix<float>& k,
                           const Matrix<float>& v, const Csr<float>& mask,
                           AttentionCache& cache, const AttentionOptions& opts) {
  check_training_opts(opts);
  forward_with_cache(q.rows(), v.cols(), cache, [&](SoftmaxState& state) {
    csr_attention_accumulate(q, k, v, mask, state, opts);
  });
}

void local_attention_forward(const Matrix<float>& q, const Matrix<float>& k,
                             const Matrix<float>& v, const LocalParams& p,
                             AttentionCache& cache, const AttentionOptions& opts) {
  check_training_opts(opts);
  forward_with_cache(q.rows(), v.cols(), cache, [&](SoftmaxState& state) {
    local_attention_accumulate(q, k, v, p, state, opts);
  });
}

void csr_attention_backward(const Matrix<float>& q, const Matrix<float>& k,
                            const Matrix<float>& v, const Csr<float>& mask,
                            const AttentionCache& cache, const Matrix<float>& dout,
                            AttentionGrads& grads, const AttentionOptions& opts) {
  check_training_opts(opts);
  check_backward_shapes(q, k, v, cache, dout);
  GPA_CHECK(mask.rows == q.rows() && mask.cols == q.rows(), "backward: mask shape mismatch");
  const Index L = q.rows();
  const Index d = q.cols();
  const float scale = detail::resolve_scale(opts.scale, d);
  grads.reset(L, d);
  const auto D = row_dots(dout, cache.out);

  // Phase A — row-parallel over queries: dQ_i = scale·Σ_j dS_ij·k_j.
  parallel_for(0, L, opts.policy, [&](Index i) {
    const float li = cache.l[static_cast<std::size_t>(i)];
    if (li <= 0.0f) return;  // empty row: zero gradient
    const float inv_l = 1.0f / li;
    const float mi = cache.m[static_cast<std::size_t>(i)];
    const float* qi = q.row(i);
    const float* doi = dout.row(i);
    const float di = D[static_cast<std::size_t>(i)];
    float* dqi = grads.dq.row(i);
    const Index e = mask.row_end(i);
    for (Index kk = mask.row_begin(i); kk < e; ++kk) {
      const Index j = mask.col_idx[static_cast<std::size_t>(kk)];
      if (opts.causal && j > i) break;
      const float* kj = k.row(j);
      const float pij = prob_of_edge(qi, kj, d, scale, mi, inv_l);
      const float* vj = v.row(j);
      float dov = 0.0f;
      for (Index p = 0; p < d; ++p) dov += doi[p] * vj[p];
      const float ds = pij * (dov - di);
      const float coeff = scale * ds;
      for (Index p = 0; p < d; ++p) dqi[p] += coeff * kj[p];
    }
  });

  // Phase B — row-parallel over keys via the transposed mask:
  // dK_j = scale·Σ_i dS_ij·q_i,  dV_j = Σ_i P_ij·dO_i.
  const auto at = transpose_csr(mask);
  parallel_for(0, L, opts.policy, [&](Index j) {
    const float* kj = k.row(j);
    const float* vj = v.row(j);
    float* dkj = grads.dk.row(j);
    float* dvj = grads.dv.row(j);
    const Index e = at.t.row_end(j);
    for (Index kk = at.t.row_begin(j); kk < e; ++kk) {
      const Index i = at.t.col_idx[static_cast<std::size_t>(kk)];
      if (opts.causal && i < j) continue;  // edge (i, j) requires j <= i
      const float li = cache.l[static_cast<std::size_t>(i)];
      if (li <= 0.0f) continue;
      const float pij = prob_of_edge(q.row(i), kj, d, scale, cache.m[static_cast<std::size_t>(i)],
                                     1.0f / li);
      const float* doi = dout.row(i);
      float dov = 0.0f;
      for (Index p = 0; p < d; ++p) dov += doi[p] * vj[p];
      const float ds = pij * (dov - D[static_cast<std::size_t>(i)]);
      const float coeff = scale * ds;
      const float* qi = q.row(i);
      for (Index p = 0; p < d; ++p) {
        dkj[p] += coeff * qi[p];
        dvj[p] += pij * doi[p];
      }
    }
  });
}

void local_attention_backward(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, const LocalParams& p,
                              const AttentionCache& cache, const Matrix<float>& dout,
                              AttentionGrads& grads, const AttentionOptions& opts) {
  check_training_opts(opts);
  check_backward_shapes(q, k, v, cache, dout);
  GPA_CHECK(p.window >= 1, "backward: local window must be >= 1");
  const Index L = q.rows();
  const Index d = q.cols();
  const float scale = detail::resolve_scale(opts.scale, d);
  grads.reset(L, d);
  const auto D = row_dots(dout, cache.out);

  // Phase A — over queries (window neighbors of i, forward direction).
  parallel_for(0, L, opts.policy, [&](Index i) {
    const float li = cache.l[static_cast<std::size_t>(i)];
    if (li <= 0.0f) return;
    const float inv_l = 1.0f / li;
    const float mi = cache.m[static_cast<std::size_t>(i)];
    const float* qi = q.row(i);
    const float* doi = dout.row(i);
    const float di = D[static_cast<std::size_t>(i)];
    float* dqi = grads.dq.row(i);
    const Index lo = std::max<Index>(0, i - (p.window - 1));
    const Index hi = opts.causal ? i : std::min<Index>(L - 1, i + (p.window - 1));
    for (Index j = lo; j <= hi; ++j) {
      const float* kj = k.row(j);
      const float pij = prob_of_edge(qi, kj, d, scale, mi, inv_l);
      const float* vj = v.row(j);
      float dov = 0.0f;
      for (Index px = 0; px < d; ++px) dov += doi[px] * vj[px];
      const float coeff = scale * pij * (dov - di);
      for (Index px = 0; px < d; ++px) dqi[px] += coeff * kj[px];
    }
  });

  // Phase B — over keys. The window is symmetric: i attends to j iff
  // |i-j| < w, so the queries seeing key j are the window around j
  // (clipped to i >= j under causal).
  parallel_for(0, L, opts.policy, [&](Index j) {
    const float* kj = k.row(j);
    const float* vj = v.row(j);
    float* dkj = grads.dk.row(j);
    float* dvj = grads.dv.row(j);
    const Index lo = opts.causal ? j : std::max<Index>(0, j - (p.window - 1));
    const Index hi = std::min<Index>(L - 1, j + (p.window - 1));
    for (Index i = lo; i <= hi; ++i) {
      const float li = cache.l[static_cast<std::size_t>(i)];
      if (li <= 0.0f) continue;
      const float pij = prob_of_edge(q.row(i), kj, d, scale,
                                     cache.m[static_cast<std::size_t>(i)], 1.0f / li);
      const float* doi = dout.row(i);
      float dov = 0.0f;
      for (Index px = 0; px < d; ++px) dov += doi[px] * vj[px];
      const float ds = pij * (dov - D[static_cast<std::size_t>(i)]);
      const float coeff = scale * ds;
      const float* qi = q.row(i);
      for (Index px = 0; px < d; ++px) {
        dkj[px] += coeff * qi[px];
        dvj[px] += pij * doi[px];
      }
    }
  });
}

}  // namespace gpa
