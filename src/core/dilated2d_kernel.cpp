#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void dilated2d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated2DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts) {
  GPA_CHECK(p.seq_len == q.rows(), "Dilated2DParams.seq_len must equal the input length");
  const MaskTraversal tr = MaskTraversal::dilated2d(p);  // validates (L, b, r)
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void dilated2d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated2DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  dilated2d_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void dilated2d_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                             const Matrix<float>&, const Dilated2DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated2d_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                             const Matrix<half_t>&, const Dilated2DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated2d_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const Dilated2DParams&, Matrix<float>&,
                                  const AttentionOptions&);
template void dilated2d_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const Dilated2DParams&,
                                  Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
