#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "graph/neighbors.hpp"

namespace gpa {

template <typename T>
void dilated2d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated2DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts) {
  GPA_CHECK(p.seq_len == q.rows(), "Dilated2DParams.seq_len must equal the input length");
  GPA_CHECK(p.block >= 1 && p.seq_len % p.block == 0, "bad dilated-2D parameters");
  if (opts.causal) {
    detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
      if ((i % p.block) % (p.dilation + 1) != 0) return;
      const Index g = p.group_size();
      const Index lo = (i / g) * g;
      for (Index j = lo; j <= i; ++j) {  // group columns never exceed i+... stop at i
        if ((j % p.block) % (p.dilation + 1) == 0) edge(j, 1.0f);
      }
    });
    return;
  }
  detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
    dilated2d_neighbors(i, p, [&](Index j) { edge(j, 1.0f); });
  });
}

template <typename T>
void dilated2d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated2DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  dilated2d_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void dilated2d_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                             const Matrix<float>&, const Dilated2DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated2d_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                             const Matrix<half_t>&, const Dilated2DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated2d_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const Dilated2DParams&, Matrix<float>&,
                                  const AttentionOptions&);
template void dilated2d_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const Dilated2DParams&,
                                  Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
