#include "core/batched.hpp"

#include "common/error.hpp"
#include "common/fnv1a.hpp"
#include "core/graph_attention.hpp"

namespace gpa {

std::uint64_t mask_fingerprint(const Csr<float>& mask) {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(mask.rows));
  f.mix(static_cast<std::uint64_t>(mask.cols));
  f.mix(mask.nnz());
  for (const Index o : mask.row_offsets) f.mix(static_cast<std::uint64_t>(o));
  for (const Index c : mask.col_idx) f.mix(static_cast<std::uint64_t>(c));
  return f.h;
}

std::uint64_t BatchKey::hash() const noexcept {
  Fnv1a f;
  f.mix(mask_fp);
  f.mix(static_cast<std::uint64_t>(seq_len));
  f.mix(static_cast<std::uint64_t>(width));
  f.mix(static_cast<std::uint64_t>(heads));
  f.mix(static_cast<std::uint64_t>(dtype));
  f.mix(static_cast<std::uint64_t>(kind));
  return f.h;
}

template <typename T>
void batched_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                       const HeadKernel<T>& kernel, Batch<T>& out,
                       const AttentionOptions& opts) {
  GPA_CHECK(q.size() == k.size() && q.size() == v.size(), "batch sizes must match");
  out.resize(q.size());
  for (std::size_t b = 0; b < q.size(); ++b) {
    GPA_CHECK(q[b].same_shape(q[0]) && q[b].same_shape(k[b]) && q[b].same_shape(v[b]),
              "all batch items must share one shape");
    if (!out[b].same_shape(q[b])) out[b] = Matrix<T>(q[b].rows(), q[b].cols());
    kernel(q[b], k[b], v[b], out[b], opts);
  }
}

template <typename T>
void batched_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                           const Csr<float>& mask, Batch<T>& out,
                           const AttentionOptions& opts) {
  HeadKernel<T> kernel = [&mask](const Matrix<T>& qb, const Matrix<T>& kb, const Matrix<T>& vb,
                                 Matrix<T>& ob, const AttentionOptions& o) {
    csr_attention(qb, kb, vb, mask, ob, o);
  };
  batched_attention(q, k, v, kernel, out, opts);
}

template <typename T>
void batched_multihead_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                                     const MultiHeadDims& dims, const Csr<float>& mask,
                                     Batch<T>& out, const AttentionOptions& opts) {
  HeadKernel<T> kernel = [&mask, &dims](const Matrix<T>& qb, const Matrix<T>& kb,
                                        const Matrix<T>& vb, Matrix<T>& ob,
                                        const AttentionOptions& o) {
    multihead_csr_attention(qb, kb, vb, dims, mask, ob, o);
  };
  batched_attention(q, k, v, kernel, out, opts);
}

template <typename T>
void batched_attention_into(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                            const HeadKernel<T>& kernel, Batch<T>& out,
                            const AttentionOptions& opts) {
  GPA_CHECK(q.size() == k.size() && q.size() == v.size(), "batch sizes must match");
  GPA_CHECK(out.size() == q.size(), "output batch must be preallocated to the input size");
  for (std::size_t b = 0; b < q.size(); ++b) {
    GPA_CHECK(q[b].same_shape(q[0]) && q[b].same_shape(k[b]) && q[b].same_shape(v[b]),
              "all batch items must share one shape");
    GPA_CHECK(out[b].same_shape(q[b]), "output batch item must be preallocated to input shape");
    kernel(q[b], k[b], v[b], out[b], opts);
  }
}

template <typename T>
void batched_csr_attention_into(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                                const Csr<float>& mask, Batch<T>& out,
                                const AttentionOptions& opts) {
  HeadKernel<T> kernel = [&mask](const Matrix<T>& qb, const Matrix<T>& kb, const Matrix<T>& vb,
                                 Matrix<T>& ob, const AttentionOptions& o) {
    csr_attention(qb, kb, vb, mask, ob, o);
  };
  batched_attention_into(q, k, v, kernel, out, opts);
}

template <typename T>
void batched_multihead_csr_attention_into(const Batch<T>& q, const Batch<T>& k,
                                          const Batch<T>& v, const MultiHeadDims& dims,
                                          const Csr<float>& mask, Batch<T>& out,
                                          const AttentionOptions& opts) {
  HeadKernel<T> kernel = [&mask, &dims](const Matrix<T>& qb, const Matrix<T>& kb,
                                        const Matrix<T>& vb, Matrix<T>& ob,
                                        const AttentionOptions& o) {
    multihead_csr_attention(qb, kb, vb, dims, mask, ob, o);
  };
  batched_attention_into(q, k, v, kernel, out, opts);
}

template void batched_attention(const Batch<float>&, const Batch<float>&, const Batch<float>&,
                                const HeadKernel<float>&, Batch<float>&,
                                const AttentionOptions&);
template void batched_attention(const Batch<half_t>&, const Batch<half_t>&,
                                const Batch<half_t>&, const HeadKernel<half_t>&,
                                Batch<half_t>&, const AttentionOptions&);
template void batched_csr_attention(const Batch<float>&, const Batch<float>&,
                                    const Batch<float>&, const Csr<float>&, Batch<float>&,
                                    const AttentionOptions&);
template void batched_csr_attention(const Batch<half_t>&, const Batch<half_t>&,
                                    const Batch<half_t>&, const Csr<float>&, Batch<half_t>&,
                                    const AttentionOptions&);
template void batched_multihead_csr_attention(const Batch<float>&, const Batch<float>&,
                                              const Batch<float>&, const MultiHeadDims&,
                                              const Csr<float>&, Batch<float>&,
                                              const AttentionOptions&);
template void batched_multihead_csr_attention(const Batch<half_t>&, const Batch<half_t>&,
                                              const Batch<half_t>&, const MultiHeadDims&,
                                              const Csr<float>&, Batch<half_t>&,
                                              const AttentionOptions&);

template void batched_attention_into(const Batch<float>&, const Batch<float>&,
                                     const Batch<float>&, const HeadKernel<float>&,
                                     Batch<float>&, const AttentionOptions&);
template void batched_attention_into(const Batch<half_t>&, const Batch<half_t>&,
                                     const Batch<half_t>&, const HeadKernel<half_t>&,
                                     Batch<half_t>&, const AttentionOptions&);
template void batched_csr_attention_into(const Batch<float>&, const Batch<float>&,
                                         const Batch<float>&, const Csr<float>&, Batch<float>&,
                                         const AttentionOptions&);
template void batched_csr_attention_into(const Batch<half_t>&, const Batch<half_t>&,
                                         const Batch<half_t>&, const Csr<float>&,
                                         Batch<half_t>&, const AttentionOptions&);
template void batched_multihead_csr_attention_into(const Batch<float>&, const Batch<float>&,
                                                   const Batch<float>&, const MultiHeadDims&,
                                                   const Csr<float>&, Batch<float>&,
                                                   const AttentionOptions&);
template void batched_multihead_csr_attention_into(const Batch<half_t>&, const Batch<half_t>&,
                                                   const Batch<half_t>&, const MultiHeadDims&,
                                                   const Csr<float>&, Batch<half_t>&,
                                                   const AttentionOptions&);

}  // namespace gpa
