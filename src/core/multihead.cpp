#include "core/multihead.hpp"

#include "common/error.hpp"
#include "core/graph_attention.hpp"

namespace gpa {

namespace {

template <typename T>
void slice_head(const Matrix<T>& packed, Index head, Index head_dim, Matrix<T>& out) {
  const Index off = head * head_dim;
  for (Index i = 0; i < packed.rows(); ++i) {
    const T* src = packed.row(i) + off;
    T* dst = out.row(i);
    for (Index j = 0; j < head_dim; ++j) dst[j] = src[j];
  }
}

template <typename T>
void unslice_head(const Matrix<T>& head_out, Index head, Index head_dim, Matrix<T>& packed) {
  const Index off = head * head_dim;
  for (Index i = 0; i < head_out.rows(); ++i) {
    const T* src = head_out.row(i);
    T* dst = packed.row(i) + off;
    for (Index j = 0; j < head_dim; ++j) dst[j] = src[j];
  }
}

}  // namespace

template <typename T>
void multihead_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const MultiHeadDims& dims, const HeadKernel<T>& kernel,
                         Matrix<T>& out, const AttentionOptions& opts) {
  GPA_CHECK(dims.num_heads >= 1 && dims.head_dim >= 1, "bad multi-head dimensions");
  const Index packed = dims.num_heads * dims.head_dim;
  GPA_CHECK(q.cols() == packed && k.cols() == packed && v.cols() == packed,
            "packed width must equal num_heads * head_dim");
  GPA_CHECK(out.rows() == q.rows() && out.cols() == packed, "output shape mismatch");

  const Index seq_len = q.rows();
  Matrix<T> qh(seq_len, dims.head_dim), kh(seq_len, dims.head_dim), vh(seq_len, dims.head_dim);
  Matrix<T> oh(seq_len, dims.head_dim);
  for (Index h = 0; h < dims.num_heads; ++h) {
    slice_head(q, h, dims.head_dim, qh);
    slice_head(k, h, dims.head_dim, kh);
    slice_head(v, h, dims.head_dim, vh);
    kernel(qh, kh, vh, oh, opts);
    unslice_head(oh, h, dims.head_dim, out);
  }
}

template <typename T>
void multihead_csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                             const MultiHeadDims& dims, const Csr<float>& mask, Matrix<T>& out,
                             const AttentionOptions& opts) {
  multihead_attention<T>(
      q, k, v, dims,
      [&mask](const Matrix<T>& qh, const Matrix<T>& kh, const Matrix<T>& vh, Matrix<T>& oh,
              const AttentionOptions& o) { csr_attention(qh, kh, vh, mask, oh, o); },
      out, opts);
}

template <typename T>
void multihead_local_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                               const MultiHeadDims& dims, const LocalParams& p, Matrix<T>& out,
                               const AttentionOptions& opts) {
  multihead_attention<T>(
      q, k, v, dims,
      [&p](const Matrix<T>& qh, const Matrix<T>& kh, const Matrix<T>& vh, Matrix<T>& oh,
           const AttentionOptions& o) { local_attention(qh, kh, vh, p, oh, o); },
      out, opts);
}

template void multihead_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const MultiHeadDims&,
                                  const HeadKernel<float>&, Matrix<float>&,
                                  const AttentionOptions&);
template void multihead_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const MultiHeadDims&,
                                  const HeadKernel<half_t>&, Matrix<half_t>&,
                                  const AttentionOptions&);
template void multihead_csr_attention(const Matrix<float>&, const Matrix<float>&,
                                      const Matrix<float>&, const MultiHeadDims&,
                                      const Csr<float>&, Matrix<float>&,
                                      const AttentionOptions&);
template void multihead_csr_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                      const Matrix<half_t>&, const MultiHeadDims&,
                                      const Csr<float>&, Matrix<half_t>&,
                                      const AttentionOptions&);
template void multihead_local_attention(const Matrix<float>&, const Matrix<float>&,
                                        const Matrix<float>&, const MultiHeadDims&,
                                        const LocalParams&, Matrix<float>&,
                                        const AttentionOptions&);
template void multihead_local_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                        const Matrix<half_t>&, const MultiHeadDims&,
                                        const LocalParams&, Matrix<half_t>&,
                                        const AttentionOptions&);

}  // namespace gpa
