#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void dilated1d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated1DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts) {
  const MaskTraversal tr = MaskTraversal::dilated1d(p);  // validates (w, r)
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void dilated1d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated1DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  dilated1d_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void dilated1d_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                             const Matrix<float>&, const Dilated1DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated1d_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                             const Matrix<half_t>&, const Dilated1DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated1d_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const Dilated1DParams&, Matrix<float>&,
                                  const AttentionOptions&);
template void dilated1d_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const Dilated1DParams&,
                                  Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
