#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "graph/neighbors.hpp"

namespace gpa {

template <typename T>
void dilated1d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated1DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts) {
  GPA_CHECK(p.window >= 1 && p.dilation >= 0, "bad dilated-1D parameters");
  const Index seq_len = q.rows();
  if (opts.causal) {
    // Only the backward strides and self survive the causal cut.
    detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
      const Index step = p.dilation + 1;
      const Index max_d = p.window - 1;
      for (Index d = (max_d / step) * step; d >= step; d -= step) {
        if (i - d >= 0) edge(i - d, 1.0f);
      }
      edge(i, 1.0f);
    });
    return;
  }
  detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
    dilated1d_neighbors(i, seq_len, p, [&](Index j) { edge(j, 1.0f); });
  });
}

template <typename T>
void dilated1d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated1DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  dilated1d_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void dilated1d_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                             const Matrix<float>&, const Dilated1DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated1d_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                             const Matrix<half_t>&, const Dilated1DParams&,
                                             SoftmaxState&, const AttentionOptions&);
template void dilated1d_attention(const Matrix<float>&, const Matrix<float>&,
                                  const Matrix<float>&, const Dilated1DParams&, Matrix<float>&,
                                  const AttentionOptions&);
template void dilated1d_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                                  const Matrix<half_t>&, const Dilated1DParams&,
                                  Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
