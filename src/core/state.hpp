#pragma once
// Persistent online-softmax state: the (O, l, m) triple of Algorithm 1.
//
// Keeping the accumulator *unnormalised* between kernel calls is what
// makes sequential composition work: the paper evaluates Longformer as
// "a double kernel call of our local and global" and BigBird as
// "local; global; CSR" (§V-F) — each call folds more edges into the same
// state, and one final normalisation yields attention over the union of
// the (disjoint) edge sets.

#include <vector>

#include "common/half.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

class SoftmaxState {
 public:
  SoftmaxState() = default;
  SoftmaxState(Index seq_len, Index head_dim) { reset(seq_len, head_dim); }

  /// Zero accumulator, l = 0, m = -inf for every row.
  void reset(Index seq_len, Index head_dim);

  Index seq_len() const noexcept { return acc_.rows(); }
  Index head_dim() const noexcept { return acc_.cols(); }

  float* acc_row(Index i) noexcept { return acc_.row(i); }
  const float* acc_row(Index i) const noexcept { return acc_.row(i); }
  float& m(Index i) noexcept { return m_[static_cast<std::size_t>(i)]; }
  float& l(Index i) noexcept { return l_[static_cast<std::size_t>(i)]; }
  float m(Index i) const noexcept { return m_[static_cast<std::size_t>(i)]; }
  float l(Index i) const noexcept { return l_[static_cast<std::size_t>(i)]; }

  /// O[i] = acc[i] / l[i] (zero rows where l == 0: fully-masked rows).
  void finalize_into(Matrix<float>& out) const;
  void finalize_into(Matrix<half_t>& out) const;

 private:
  Matrix<float> acc_;
  std::vector<float> m_;
  std::vector<float> l_;
};

}  // namespace gpa
