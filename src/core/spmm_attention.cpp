#include "core/spmm_attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"
#include "parallel/parallel_for.hpp"

namespace gpa {

template <typename T>
Csr<float> sddmm(const Matrix<T>& q, const Matrix<T>& k, const Csr<float>& mask, float scale,
                 const ExecPolicy& policy) {
  GPA_CHECK(mask.rows == q.rows() && mask.cols == k.rows(), "SDDMM mask shape mismatch");
  GPA_CHECK(q.cols() == k.cols(), "SDDMM head dimension mismatch");
  Csr<float> s;
  s.rows = mask.rows;
  s.cols = mask.cols;
  s.row_offsets = mask.row_offsets;
  s.col_idx = mask.col_idx;
  s.values.resize(mask.nnz());
  const Index d = q.cols();
  // The Q·K dots go through the dispatched vector ops on the float
  // path (same lane contract as the fused kernels, so both arms stay
  // bit-identical); half storage keeps the scalar convert loop (F16C
  // open, as in kernel_common's fold).
  const simd::VecOps& vo = simd::ops(policy.simd);

  parallel_for(0, mask.rows, policy, [&](Index i) {
    const T* qi = q.row(i);
    const Index e = mask.row_end(i);
    for (Index kk = mask.row_begin(i); kk < e; ++kk) {
      const T* kj = k.row(mask.col_idx[static_cast<std::size_t>(kk)]);
      float w;
      if constexpr (std::is_same_v<T, float>) {
        w = vo.dot(qi, kj, d);
      } else {
        w = 0.0f;
        for (Index p = 0; p < d; ++p) {
          w += static_cast<float>(qi[p]) * static_cast<float>(kj[p]);
        }
      }
      s.values[static_cast<std::size_t>(kk)] = w * scale;
    }
  });
  return s;
}

void csr_row_softmax(Csr<float>& scores, const ExecPolicy& policy) {
  // A CSR row's values are contiguous, so the max / sum / rescale passes
  // go straight through the dispatched reductions (lane contract: both
  // arms bit-identical). Only the exp pass stays a scalar loop — there
  // is no vector exp in the arms, and a polynomial one would break the
  // bit-identity story.
  const simd::VecOps& vo = simd::ops(policy.simd);
  parallel_for(0, scores.rows, policy, [&](Index i) {
    const Index b = scores.row_begin(i);
    const Index e = scores.row_end(i);
    if (b == e) return;
    float* row = scores.values.data() + static_cast<std::size_t>(b);
    const Index n = e - b;
    const float m = vo.reduce_max(row, n);
    for (Index k = 0; k < n; ++k) row[k] = std::exp(row[k] - m);
    const float l = vo.reduce_sum(row, n);
    vo.scale(row, 1.0f / l, n);
  });
}

template <typename T>
void spmm(const Csr<float>& s, const Matrix<T>& v, Matrix<T>& out, const ExecPolicy& policy) {
  GPA_CHECK(s.cols == v.rows(), "SpMM inner dimension mismatch");
  GPA_CHECK(out.rows() == s.rows && out.cols() == v.cols(), "SpMM output shape mismatch");
  const Index d = v.cols();
  // The weighted V-row accumulation is the axpy of the fused kernels'
  // fold; float storage rides the dispatched arm (same lane contract,
  // so scalar and AVX2 dispatch stay bit-identical), half keeps the
  // scalar convert-and-accumulate loop (F16C open, as in
  // kernel_common's fold).
  const simd::VecOps& vo = simd::ops(policy.simd);
  parallel_for(0, s.rows, policy, [&](Index i) {
    // Accumulate in float even for half storage.
    std::vector<float> acc(static_cast<std::size_t>(d), 0.0f);
    const Index e = s.row_end(i);
    for (Index k = s.row_begin(i); k < e; ++k) {
      const float w = s.values[static_cast<std::size_t>(k)];
      const T* vr = v.row(s.col_idx[static_cast<std::size_t>(k)]);
      if constexpr (std::is_same_v<T, float>) {
        vo.axpy(acc.data(), w, vr, d);
      } else {
        for (Index p = 0; p < d; ++p) {
          acc[static_cast<std::size_t>(p)] += w * static_cast<float>(vr[p]);
        }
      }
    }
    T* o = out.row(i);
    for (Index p = 0; p < d; ++p) o[p] = T(acc[static_cast<std::size_t>(p)]);
  });
}

template <typename T>
void spmm_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                    const Csr<float>& mask, Matrix<T>& out, const AttentionOptions& opts) {
  const float scale = detail::resolve_scale(opts.scale, q.cols());
  // All three stages iterate the same mask rows, so one Auto resolution
  // against the mask's skew profile serves the whole pipeline.
  const ExecPolicy policy =
      MaskTraversal::over(mask).resolved_policy(opts.policy, mask.rows, /*causal=*/false);
  Csr<float> s = sddmm(q, k, mask, scale, policy);
  csr_row_softmax(s, policy);
  spmm(s, v, out, policy);
}

template Csr<float> sddmm(const Matrix<float>&, const Matrix<float>&, const Csr<float>&, float,
                          const ExecPolicy&);
template Csr<float> sddmm(const Matrix<half_t>&, const Matrix<half_t>&, const Csr<float>&,
                          float, const ExecPolicy&);
template void spmm(const Csr<float>&, const Matrix<float>&, Matrix<float>&, const ExecPolicy&);
template void spmm(const Csr<float>&, const Matrix<half_t>&, Matrix<half_t>&,
                   const ExecPolicy&);
template void spmm_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                             const Csr<float>&, Matrix<float>&, const AttentionOptions&);
template void spmm_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                             const Matrix<half_t>&, const Csr<float>&, Matrix<half_t>&,
                             const AttentionOptions&);

}  // namespace gpa
