#pragma once
// Two-phase sparse attention in the style of graph-BLAS pipelines — the
// alternative the paper names in §VI-A ("representation of our
// algorithms using performant functions from graph processing libraries
// like GraphBLAS and cuSPARSE"). Pipeline:
//
//   1. masked SDDMM:   S = mask ⊙ (scale · QKᵀ)   (CSR values)
//   2. CSR row softmax (two-pass, stable)
//   3. SpMM:           O = S · V
//
// Same O(Sf·L²·d) work as the fused kernels but it materialises the
// score matrix (O(Sf·L²) extra memory) and reads V twice — the ablation
// bench quantifies that trade.

#include "core/attention_options.hpp"
#include "sparse/csr.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// Masked sampled dense-dense product: values[k] = scale·(Q_i · K_j) for
/// each stored (i, j). Returns a CSR sharing the mask's structure.
template <typename T>
Csr<float> sddmm(const Matrix<T>& q, const Matrix<T>& k, const Csr<float>& mask, float scale,
                 const ExecPolicy& policy = {});

/// In-place numerically stable softmax over each CSR row (empty rows
/// stay empty == all-zero output rows).
void csr_row_softmax(Csr<float>& scores, const ExecPolicy& policy = {});

/// O = S · V over the CSR structure.
template <typename T>
void spmm(const Csr<float>& s, const Matrix<T>& v, Matrix<T>& out,
          const ExecPolicy& policy = {});

/// The full two-phase pipeline.
template <typename T>
void spmm_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                    const Csr<float>& mask, Matrix<T>& out, const AttentionOptions& opts = {});

}  // namespace gpa
