#pragma once
// MaskTraversal — THE place a mask family's iteration order is defined.
//
// Before this layer existed the order every sparse pattern visits its
// edges in lived in two independent implementations: each one-shot
// kernel hand-rolled its row loop (including a causal branch), and
// kvcache/MaskSpec re-derived the same order "kernel-order-exact" for
// incremental decode. The decode-vs-kernel bit-identity guarantee
// therefore rested on two code paths agreeing by inspection. Here the
// enumeration is defined once per family; the kernels, the composed
// kernel, the KV-cache decode path, and the serving layer's batch
// fingerprints all consume this single definition, so "add a new mask
// family" is a one-switch-case change instead of a three-subsystem one.
//
// The non-causal orders delegate to graph/neighbors.hpp (the paper's
// Get_Neighbors generators); the causal row slices — previously
// duplicated across the kernels' causal branches and MaskSpec — are
// defined here and nowhere else. Everything is a template over the
// visitor, so kernels inline the enumeration exactly as before (the
// per-row switch on the family tag is the only dispatch, amortized over
// the row's edges).

#include <algorithm>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/attention_options.hpp"
#include "graph/degree.hpp"
#include "graph/neighbors.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa {

struct ComposedMask;  // sparse/presets.hpp

class MaskTraversal {
 public:
  enum class Kind : std::uint8_t { Csr, Coo, Local, Dilated1d, Dilated2d, Global };

  MaskTraversal() = default;

  // --- owning factories (sessions / anything that outlives the mask
  // argument). Parameters are validated here, once. -------------------
  static MaskTraversal csr(std::shared_ptr<const Csr<float>> mask);
  static MaskTraversal coo(std::shared_ptr<const Coo<float>> mask,
                           CooSearch search = CooSearch::Binary);
  static MaskTraversal local(LocalParams p);
  static MaskTraversal dilated1d(Dilated1DParams p);
  static MaskTraversal dilated2d(Dilated2DParams p);
  static MaskTraversal global(GlobalMinusLocalParams p);

  // --- non-owning views (one kernel call over a caller-held mask) ----
  static MaskTraversal over(const Csr<float>& mask);
  static MaskTraversal over(const Coo<float>& mask, CooSearch search);

  Kind kind() const noexcept { return kind_; }

  /// True when the traversal carries no explicit storage or owns it —
  /// i.e. it may safely outlive the mask object it was created from.
  /// Views from `over()` are NOT self-contained; long-lived holders
  /// (sessions) must use the owning factories.
  bool self_contained() const noexcept {
    return (kind_ != Kind::Csr && kind_ != Kind::Coo) || owner_ != nullptr;
  }

  /// Explicit storage is square (trivially true for implicit families).
  bool square_storage() const noexcept {
    switch (kind_) {
      case Kind::Csr: return csr_->rows == csr_->cols;
      case Kind::Coo: return coo_->rows == coo_->cols;
      default: return true;
    }
  }

  /// Hard row-count ceiling of explicit / sequence-bound families
  /// (CSR, COO, dilated-2D); -1 for the unbounded implicit patterns,
  /// whose causal slices only look backward.
  Index max_len() const noexcept {
    switch (kind_) {
      case Kind::Csr: return csr_->rows;
      case Kind::Coo: return coo_->rows;
      case Kind::Dilated2d: return dilated2_.seq_len;
      default: return Index{-1};
    }
  }

  /// Calls `edge(j, gate)` for every neighbor j of row i, in THE kernel
  /// order of this family. `gate` is the stored mask value for explicit
  /// formats, 1.0f for implicit ones. With `causal`, only j <= i is
  /// visited and the enumeration stays work-optimal (clamped/closed
  /// forms, never enumerate-then-discard).
  template <typename Fn>
  void for_each_edge(Index i, Index seq_len, bool causal, Fn&& edge) const {
    switch (kind_) {
      case Kind::Csr: {
        const Csr<float>& m = *csr_;
        const Index e = m.row_end(i);
        for (Index kk = m.row_begin(i); kk < e; ++kk) {
          const Index j = m.col_idx[static_cast<std::size_t>(kk)];
          if (causal && j > i) break;  // columns are sorted: done with this row
          edge(j, m.values[static_cast<std::size_t>(kk)]);
        }
        return;
      }
      case Kind::Coo: {
        // Each row first locates its extent within the coordinate
        // arrays. The paper's kernel scans from index zero (the §V-C
        // cost that makes COO uncompetitive in Fig. 3); Binary is the
        // ablation repair.
        const CooRowBounds b = coo_search_ == CooSearch::Linear
                                   ? coo_row_bounds_linear(*coo_, i)
                                   : coo_row_bounds_binary(*coo_, i);
        for (Index kk = b.first; kk < b.last; ++kk) {
          const Index j = coo_->col_idx[static_cast<std::size_t>(kk)];
          if (causal && j > i) break;  // columns sorted within the row
          edge(j, coo_->values[static_cast<std::size_t>(kk)]);
        }
        return;
      }
      case Kind::Local: {
        if (causal) {
          // Sliding-window causal attention: clamp the forward half of
          // the window instead of enumerating and discarding.
          const Index lo = std::max<Index>(0, i - (local_.window - 1));
          for (Index j = lo; j <= i; ++j) edge(j, 1.0f);
        } else {
          local_neighbors(i, seq_len, local_, [&](Index j) { edge(j, 1.0f); });
        }
        return;
      }
      case Kind::Dilated1d: {
        if (causal) {
          // Only the backward strides and self survive the causal cut.
          const Index step = dilated_.dilation + 1;
          const Index max_d = dilated_.window - 1;
          for (Index d = (max_d / step) * step; d >= step; d -= step) {
            if (i - d >= 0) edge(i - d, 1.0f);
          }
          edge(i, 1.0f);
        } else {
          dilated1d_neighbors(i, seq_len, dilated_, [&](Index j) { edge(j, 1.0f); });
        }
        return;
      }
      case Kind::Dilated2d: {
        if (causal) {
          if ((i % dilated2_.block) % (dilated2_.dilation + 1) != 0) return;
          const Index g = dilated2_.group_size();
          const Index lo = (i / g) * g;
          for (Index j = lo; j <= i; ++j) {
            if ((j % dilated2_.block) % (dilated2_.dilation + 1) == 0) edge(j, 1.0f);
          }
        } else {
          dilated2d_neighbors(i, dilated2_, [&](Index j) { edge(j, 1.0f); });
        }
        return;
      }
      case Kind::Global: {
        if (causal) {
          // Closed form of the causal cut: the window's forward half
          // covers every j in (win_lo, i], so only columns below win_lo
          // survive — the sequence the full kernel's filtered
          // enumeration visits, without scanning the forward extent.
          const Index win_lo = i - (global_.local.window - 1);
          if (global_.global.is_global(i)) {
            for (Index j = 0; j < win_lo && j <= i; ++j) edge(j, 1.0f);
          } else {
            for (const Index j : global_.global.tokens) {
              if (j > i) break;  // tokens are sorted
              if (j < win_lo) edge(j, 1.0f);
            }
          }
        } else {
          global_minus_local_neighbors(i, seq_len, global_, [&](Index j) { edge(j, 1.0f); });
        }
        return;
      }
    }
  }

  /// Column-ranged enumeration: row i's neighbors with col_lo <= j <
  /// col_hi, in the same relative order as `for_each_edge`. This is the
  /// shard form the sequence-parallel paths iterate — a K/V shard owns a
  /// contiguous column range, and a node folds exactly the edges of its
  /// rows that land in the shard it currently holds. For the explicit
  /// formats the range is located by binary search on the row's sorted
  /// columns (no enumerate-then-discard); implicit families filter their
  /// closed-form enumeration. Since every family's enumeration visits
  /// each edge once, concatenating disjoint ranges visits the row's
  /// edges exactly once — and for ascending-order families (CSR under
  /// ascending shards) in full-kernel order, which is what makes the
  /// in-order distributed fold bit-identical to the one-shot kernel.
  template <typename Fn>
  void for_each_edge_in_cols(Index i, Index seq_len, bool causal, Index col_lo, Index col_hi,
                             Fn&& edge) const {
    switch (kind_) {
      case Kind::Csr: {
        const Csr<float>& m = *csr_;
        const auto begin = m.col_idx.begin() + m.row_begin(i);
        const auto end = m.col_idx.begin() + m.row_end(i);
        auto it = std::lower_bound(begin, end, col_lo);
        for (; it != end && *it < col_hi; ++it) {
          const Index j = *it;
          if (causal && j > i) break;  // columns sorted: done with this row
          edge(j, m.values[static_cast<std::size_t>(it - m.col_idx.begin())]);
        }
        return;
      }
      case Kind::Coo: {
        const CooRowBounds b = coo_search_ == CooSearch::Linear
                                   ? coo_row_bounds_linear(*coo_, i)
                                   : coo_row_bounds_binary(*coo_, i);
        const auto begin = coo_->col_idx.begin() + b.first;
        const auto end = coo_->col_idx.begin() + b.last;
        auto it = std::lower_bound(begin, end, col_lo);
        for (; it != end && *it < col_hi; ++it) {
          const Index j = *it;
          if (causal && j > i) break;
          edge(j, coo_->values[static_cast<std::size_t>(it - coo_->col_idx.begin())]);
        }
        return;
      }
      default:
        // Implicit families: filter the closed-form enumeration. The
        // range test preserves the family's relative edge order.
        for_each_edge(i, seq_len, causal, [&](Index j, float gate) {
          if (j >= col_lo && j < col_hi) edge(j, gate);
        });
        return;
    }
  }

  /// Row i's causal neighborhood — what one incremental decode step at
  /// position i folds. Identical to `for_each_edge(i, ·, causal=true,
  /// ·)` by construction (under causal the forward extent is invisible,
  /// so no family's slice depends on a notional total length).
  template <typename Fn>
  void causal_row_slice(Index i, Fn&& edge) const {
    for_each_edge(i, i + 1, /*causal=*/true, edge);
  }

  /// Edges of row i (degree), counted through the same enumeration.
  Index row_degree(Index i, Index seq_len, bool causal) const {
    Index n = 0;
    for_each_edge(i, seq_len, causal, [&](Index, float) { ++n; });
    return n;
  }

  /// Per-row degrees over a sequence — feed to degree_stats() for the
  /// min/mean/max/imbalance skew profile that picks schedule defaults.
  std::vector<Index> degrees(Index seq_len, bool causal = false) const;

  /// Degree statistics (skew profile) of the traversal at seq_len.
  DegreeStats stats(Index seq_len, bool causal = false) const;

  /// Resolve a Schedule::Auto policy from this traversal's skew profile
  /// at seq_len (see parallel/auto_tune.hpp for the decision rule);
  /// non-Auto policies pass through untouched. The stats sweep is one
  /// edge count — O(nnz) with no flops, ~1/head_dim of the kernel's
  /// fold work — paid only when auto-tuning was requested.
  ExecPolicy resolved_policy(const ExecPolicy& p, Index seq_len, bool causal) const;

  /// Structural fingerprint: two traversals fingerprint equally iff
  /// they enumerate the same (row → column sequence) map. Explicit
  /// formats hash shape + offsets + columns (values excluded, matching
  /// core/batched's mask_fingerprint contract); implicit families hash
  /// their parameters. A kind tag is mixed first so e.g. a local window
  /// can never collide with the CSR that materialises it.
  std::uint64_t fingerprint() const;

 private:
  Kind kind_ = Kind::Local;
  const Csr<float>* csr_ = nullptr;   ///< Kind::Csr
  const Coo<float>* coo_ = nullptr;   ///< Kind::Coo
  /// Keeps csr_/coo_ alive for the owning factories; null for views.
  std::shared_ptr<const void> owner_;
  CooSearch coo_search_ = CooSearch::Binary;
  LocalParams local_{};
  Dilated1DParams dilated_{};
  Dilated2DParams dilated2_{};
  GlobalMinusLocalParams global_{};
};

/// The per-component traversals of a composed mask, in composition
/// order, with the same component→kernel routing composed_attention
/// has always used (implicit kernels where the family can express the
/// component, the materialised CSR otherwise). `owning` copies explicit
/// components so the result outlives the ComposedMask (session use);
/// views them otherwise (single kernel call).
std::vector<MaskTraversal> traversals_of(const ComposedMask& mask, bool owning = false);

/// Auto-tuning over a composition: the per-row work of a composed mask
/// is the sum of its components' degrees, so the skew profile (and the
/// schedule it picks) is computed over that sum.
ExecPolicy resolved_policy(const ExecPolicy& p, const std::vector<MaskTraversal>& components,
                           Index seq_len, bool causal);

namespace detail {

/// Adapts a traversal to run_rows' row-enumerator shape. The traversal
/// must outlive the returned lambda (kernels hold it on the stack for
/// the duration of the call).
inline auto traversal_rows(const MaskTraversal& tr, Index seq_len, bool causal) {
  return [&tr, seq_len, causal](Index i, auto&& edge) {
    tr.for_each_edge(i, seq_len, causal, edge);
  };
}

}  // namespace detail

}  // namespace gpa
