#pragma once
// Sequential kernel composition over a ComposedMask — the execution
// style Figure 6 benchmarks ("a double kernel call of our local and
// global", "a sequential kernel call of our local; global; and CSR
// functions"). Each component folds its (disjoint) edges into one shared
// SoftmaxState; a single finalisation yields attention over the union.

#include "core/attention_options.hpp"
#include "core/state.hpp"
#include "sparse/presets.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// Runs each component through its dedicated kernel (local / dilated /
/// global / CSR) sequentially.
template <typename T>
void composed_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                        const ComposedMask& mask, Matrix<T>& out,
                        const AttentionOptions& opts = {});

/// The fused alternative: one CSR kernel call on the union mask (the
/// paper's "single call to the CSR implementation performs as well as or
/// better than sequential calls").
template <typename T>
void fused_csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const ComposedMask& mask, Matrix<T>& out,
                         const AttentionOptions& opts = {});

}  // namespace gpa
