#pragma once
// Options shared by every attention entry point.

#include "parallel/exec_policy.hpp"

namespace gpa {

/// How the COO kernel locates its row inside the coordinate arrays.
/// Linear is the paper's kernel (§V-C documents its cost); Binary is the
/// repaired variant kept for the ablation benchmark.
enum class CooSearch : std::uint8_t { Linear, Binary };

struct AttentionOptions {
  /// Score scale; < 0 selects the PyTorch SDPA default 1/sqrt(dk) the
  /// paper verified against.
  float scale = -1.0f;
  ExecPolicy policy{};
  /// Explicit-mask kernels only: multiply each score by the stored mask
  /// value (weighted-graph extension; the paper's masks are 0/1).
  bool use_mask_values = false;
  CooSearch coo_search = CooSearch::Linear;
  /// Intersect the mask with the causal (lower-triangular) pattern.
  /// Each kernel restricts its neighbor enumeration to j <= i, so the
  /// causal path stays work-optimal (no enumerate-then-discard).
  bool causal = false;
};

}  // namespace gpa
