#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void local_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                const LocalParams& p, SoftmaxState& state,
                                const AttentionOptions& opts) {
  const MaskTraversal tr = MaskTraversal::local(p);  // validates the window
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void local_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                     const LocalParams& p, Matrix<T>& out, const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  local_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void local_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                         const Matrix<float>&, const LocalParams&,
                                         SoftmaxState&, const AttentionOptions&);
template void local_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                         const Matrix<half_t>&, const LocalParams&,
                                         SoftmaxState&, const AttentionOptions&);
template void local_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                              const LocalParams&, Matrix<float>&, const AttentionOptions&);
template void local_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                              const Matrix<half_t>&, const LocalParams&, Matrix<half_t>&,
                              const AttentionOptions&);

}  // namespace gpa
