#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "graph/neighbors.hpp"

namespace gpa {

template <typename T>
void local_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                const LocalParams& p, SoftmaxState& state,
                                const AttentionOptions& opts) {
  GPA_CHECK(p.window >= 1, "local window must be >= 1");
  const Index seq_len = q.rows();
  if (opts.causal) {
    // Sliding-window causal attention: clamp the forward half of the
    // window instead of enumerating and discarding.
    detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
      const Index lo = std::max<Index>(0, i - (p.window - 1));
      for (Index j = lo; j <= i; ++j) edge(j, 1.0f);
    });
    return;
  }
  detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
    local_neighbors(i, seq_len, p, [&](Index j) { edge(j, 1.0f); });
  });
}

template <typename T>
void local_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                     const LocalParams& p, Matrix<T>& out, const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  local_attention_accumulate(q, k, v, p, state, opts);
  state.finalize_into(out);
}

template void local_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                         const Matrix<float>&, const LocalParams&,
                                         SoftmaxState&, const AttentionOptions&);
template void local_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                         const Matrix<half_t>&, const LocalParams&,
                                         SoftmaxState&, const AttentionOptions&);
template void local_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                              const LocalParams&, Matrix<float>&, const AttentionOptions&);
template void local_attention(const Matrix<half_t>&, const Matrix<half_t>&,
                              const Matrix<half_t>&, const LocalParams&, Matrix<half_t>&,
                              const AttentionOptions&);

}  // namespace gpa
