#pragma once
// Multi-head attention wrapper — the paper's algorithms are single-
// headed "to facilitate focus on the experiments, though it is trivial
// to scale them to a multi-headed approach" (§IV-B). This wrapper is
// that trivial extension: the packed L×(H·dh) projections are sliced per
// head, each head runs any of the graph kernels (sharing one mask, as
// sparse-transformer implementations do), and outputs are re-packed.

#include <functional>

#include "core/attention_options.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

struct MultiHeadDims {
  Index num_heads = 1;
  Index head_dim = 0;  ///< dh; packed width is num_heads * head_dim
};

/// Per-head kernel: receives the head's L×dh Q/K/V slices and writes the
/// head's L×dh output.
template <typename T>
using HeadKernel = std::function<void(const Matrix<T>&, const Matrix<T>&, const Matrix<T>&,
                                      Matrix<T>&, const AttentionOptions&)>;

/// Runs `kernel` independently for every head of the packed inputs.
template <typename T>
void multihead_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const MultiHeadDims& dims, const HeadKernel<T>& kernel,
                         Matrix<T>& out, const AttentionOptions& opts = {});

/// Convenience: multi-head over a shared CSR mask.
template <typename T>
void multihead_csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                             const MultiHeadDims& dims, const Csr<float>& mask, Matrix<T>& out,
                             const AttentionOptions& opts = {});

/// Convenience: multi-head local attention.
template <typename T>
void multihead_local_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                               const MultiHeadDims& dims, const LocalParams& p, Matrix<T>& out,
                               const AttentionOptions& opts = {});

}  // namespace gpa
