#pragma once
// Public API: the paper's six graph-processing attention algorithms
// (§IV-B), for fp32 and fp16 storage.
//
// Every kernel computes masked scaled-dot-product attention
//     O = softmax_rows(scale · QKᵀ restricted to the mask) · V
// visiting *only* the mask's non-zero entries (true sparsity / work
// optimality). Explicit-mask kernels take a COO or CSR mask; implicit
// kernels compute their neighbor sets from pattern parameters.
//
// Two call styles:
//  * one-shot:    `csr_attention(Q, K, V, mask, O)` — fresh state,
//                 normalised output.
//  * accumulate:  `csr_attention_accumulate(Q, K, V, mask, state)` —
//                 folds edges into a persistent SoftmaxState so kernels
//                 can be chained over disjoint edge sets (Longformer =
//                 local ∘ global, BigBird = local ∘ global ∘ random);
//                 call `state.finalize_into(O)` once at the end.

#include "core/attention_options.hpp"
#include "core/state.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

// --- Explicit masks -------------------------------------------------

/// CSR mask: O(1) row location + sorted columns. The paper's preferred
/// explicit format (best explicit-mask speedups in Fig. 3).
template <typename T>
void csr_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                              const Csr<float>& mask, SoftmaxState& state,
                              const AttentionOptions& opts = {});
template <typename T>
void csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                   const Csr<float>& mask, Matrix<T>& out, const AttentionOptions& opts = {});

/// COO mask: each row must first locate its bounds in the coordinate
/// arrays. opts.coo_search selects the paper's linear scan or the
/// binary-search repair (ablation).
template <typename T>
void coo_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                              const Coo<float>& mask, SoftmaxState& state,
                              const AttentionOptions& opts = {});
template <typename T>
void coo_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                   const Coo<float>& mask, Matrix<T>& out, const AttentionOptions& opts = {});

// --- Implicit masks (ordered sparsity) -------------------------------

template <typename T>
void local_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                const LocalParams& p, SoftmaxState& state,
                                const AttentionOptions& opts = {});
template <typename T>
void local_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                     const LocalParams& p, Matrix<T>& out, const AttentionOptions& opts = {});

template <typename T>
void dilated1d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated1DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts = {});
template <typename T>
void dilated1d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated1DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts = {});

template <typename T>
void dilated2d_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                    const Dilated2DParams& p, SoftmaxState& state,
                                    const AttentionOptions& opts = {});
template <typename T>
void dilated2d_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                         const Dilated2DParams& p, Matrix<T>& out,
                         const AttentionOptions& opts = {});

/// Global (non-local): the edge set is (global rows ∪ global columns)
/// minus the given local window, so it chains after local_attention
/// without double-counting (§IV-B).
template <typename T>
void global_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                                 const GlobalMinusLocalParams& p, SoftmaxState& state,
                                 const AttentionOptions& opts = {});
template <typename T>
void global_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                      const GlobalMinusLocalParams& p, Matrix<T>& out,
                      const AttentionOptions& opts = {});

}  // namespace gpa
