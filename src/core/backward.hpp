#pragma once
// Training support: backward pass for masked attention, touching only
// the mask's edges in both directions (the work-optimality argument of
// §IV-B applies verbatim to the gradient computation — each of dQ, dK,
// dV needs exactly one fused multiply-add per mask edge per channel).
//
// Like FlashAttention's backward, nothing quadratic is stored: the
// forward pass saves the per-row online-softmax statistics (m, l) and
// the output O, and the backward pass *recomputes* the attention
// probabilities edge-by-edge from them:
//
//   P_ij  = exp(scale·q_i·k_j − m_i) / l_i
//   D_i   = dO_i · O_i
//   dS_ij = P_ij · (dO_i · v_j − D_i)
//   dQ_i  = scale · Σ_j dS_ij k_j          (row-parallel over i)
//   dK_j  = scale · Σ_i dS_ij q_i          (row-parallel over j via Aᵀ)
//   dV_j  = Σ_i P_ij dO_i
//
// dK/dV accumulate along mask columns; the CSR path walks a transposed
// copy of the mask, and the implicit patterns (local / dilated / global)
// exploit their structural symmetry instead — no transpose, no extra
// memory. §VI-B's training-workflow estimate ("only 25% of memory
// available for attention") is exactly the regime this enables.

#include "core/attention_options.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// Forward artifacts the backward pass needs.
struct AttentionCache {
  Matrix<float> out;       ///< O, L×d
  std::vector<float> m;    ///< per-row max statistic
  std::vector<float> l;    ///< per-row normaliser

  void reset(Index seq_len, Index head_dim);
};

struct AttentionGrads {
  Matrix<float> dq, dk, dv;

  void reset(Index seq_len, Index head_dim);
};

/// Forward passes that also fill the cache. Numerically identical to the
/// inference kernels.
void csr_attention_forward(const Matrix<float>& q, const Matrix<float>& k,
                           const Matrix<float>& v, const Csr<float>& mask,
                           AttentionCache& cache, const AttentionOptions& opts = {});
void local_attention_forward(const Matrix<float>& q, const Matrix<float>& k,
                             const Matrix<float>& v, const LocalParams& p,
                             AttentionCache& cache, const AttentionOptions& opts = {});

/// Backward passes. `dout` is dL/dO. Supports opts.causal (edges above
/// the diagonal contribute nothing on either side). use_mask_values is
/// not supported in training (throws).
void csr_attention_backward(const Matrix<float>& q, const Matrix<float>& k,
                            const Matrix<float>& v, const Csr<float>& mask,
                            const AttentionCache& cache, const Matrix<float>& dout,
                            AttentionGrads& grads, const AttentionOptions& opts = {});
void local_attention_backward(const Matrix<float>& q, const Matrix<float>& k,
                              const Matrix<float>& v, const LocalParams& p,
                              const AttentionCache& cache, const Matrix<float>& dout,
                              AttentionGrads& grads, const AttentionOptions& opts = {});

}  // namespace gpa
