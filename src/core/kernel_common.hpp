#pragma once
// Shared implementation of Algorithm 1 (Graph Processing Attention).
//
// Every kernel is the same row-parallel fold; they differ only in the
// neighbor enumeration (`Get_Neighbors`). The fold below is the paper's
// inner loop with one algebraic change documented in DESIGN.md §4: the
// accumulator stays unnormalised (U = l·O) and is divided by l once at
// finalisation, instead of renormalising on every edge. Per edge:
//
//   w      = scale · (Q_i · K_j)          (optionally · mask value)
//   m_new  = max(m, w)
//   alpha  = exp(m − m_new), beta = exp(w − m_new)
//   l      = l·alpha + beta
//   U_i    = U_i·alpha + beta·V_j
//
// which is exactly the paper's update after multiplying through by l.

#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "core/attention_options.hpp"
#include "core/state.hpp"
#include "core/traversal.hpp"
#include "parallel/parallel_for.hpp"
#include "simd/simd.hpp"
#include "tensor/matrix.hpp"
#include "tensor/softmax.hpp"

namespace gpa::detail {

/// Resolve the score scale (< 0 means 1/sqrt(dk)).
inline float resolve_scale(float requested, Index head_dim) {
  if (requested >= 0.0f) return requested;
  GPA_CHECK(head_dim > 0, "cannot derive 1/sqrt(dk) scale for empty head dimension");
  return 1.0f / std::sqrt(static_cast<float>(head_dim));
}

/// Validate the Q/K/V/state shapes shared by all kernels.
template <typename T>
void check_inputs(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                  const SoftmaxState& state) {
  GPA_CHECK(q.rows() == k.rows() && q.rows() == v.rows(),
            "Q, K, V must share the sequence length");
  GPA_CHECK(q.cols() == k.cols(), "Q and K must share the head dimension");
  GPA_CHECK(v.cols() == q.cols(), "this implementation assumes dv == dk, like the paper's");
  GPA_CHECK(state.seq_len() == q.rows() && state.head_dim() == v.cols(),
            "softmax state shape mismatch — reset(seq_len, head_dim) first");
}

/// Fold one (row, neighbor) edge into the row's online-softmax state,
/// with the K/V rows given as raw pointers. This is the lowest-level
/// form of the fold: the matrix kernels wrap it via fold_edge below, and
/// the KV-cache decode path calls it directly with paged K/V row
/// pointers (each page slot is a contiguous d-float span), so incremental
/// decode reuses the exact fold — same VecOps dispatch, same operation
/// order — and stays bit-identical to the one-shot kernels.
/// `qi` is the query row, `acc` the unnormalised accumulator. Both
/// instantiations route the d-dimension loops (Q·K dot, accumulate /
/// rescale) through the dispatched vector ops: the half instantiation
/// uses the fp16 table entries (F16C/AVX-512 widen on load, fp32
/// accumulate), so half storage vectorizes with the same parity class
/// as the float path on every arm.
template <typename T>
inline void fold_edge_rows(const T* GPA_RESTRICT qi, const T* GPA_RESTRICT kj,
                           const T* GPA_RESTRICT vj, Index head_dim, float scale, float gate,
                           bool use_gate, OnlineSoftmaxRow& osr, float* GPA_RESTRICT acc,
                           const simd::VecOps& vo) {
  float w;
  if constexpr (std::is_same_v<T, float>) {
    w = vo.dot(qi, kj, head_dim);
  } else {
    w = vo.dot_h(qi, kj, head_dim);
  }
  w *= scale;
  if (use_gate) w *= gate;

  const auto [alpha, beta] = osr.push(w);
  if constexpr (std::is_same_v<T, float>) {
    if (alpha == 1.0f) {  // running max unchanged — skip the rescale multiply
      vo.axpy(acc, beta, vj, head_dim);
    } else {
      vo.axpby(acc, alpha, beta, vj, head_dim);
    }
  } else {
    if (alpha == 1.0f) {
      vo.axpy_h(acc, beta, vj, head_dim);
    } else {
      vo.axpby_h(acc, alpha, beta, vj, head_dim);
    }
  }
}

/// Mixed-precision fold for decode over half-width KV pages: the query
/// row is the caller's fp32 payload, K/V come from fp16 page storage
/// and widen on load. Numerics match folding the widened rows through
/// the float path (widening is exact), so fp16-page decode differs from
/// fp32-page decode only by the storage quantisation of K/V.
inline void fold_edge_rows_fh(const float* GPA_RESTRICT qi, const half_t* GPA_RESTRICT kj,
                              const half_t* GPA_RESTRICT vj, Index head_dim, float scale,
                              float gate, bool use_gate, OnlineSoftmaxRow& osr,
                              float* GPA_RESTRICT acc, const simd::VecOps& vo) {
  float w = vo.dot_fh(qi, kj, head_dim);
  w *= scale;
  if (use_gate) w *= gate;

  const auto [alpha, beta] = osr.push(w);
  if (alpha == 1.0f) {
    vo.axpy_h(acc, beta, vj, head_dim);
  } else {
    vo.axpby_h(acc, alpha, beta, vj, head_dim);
  }
}

/// Matrix-indexed convenience wrapper over fold_edge_rows (the form the
/// one-shot kernels' row enumerators use).
template <typename T>
inline void fold_edge(const T* GPA_RESTRICT qi, const Matrix<T>& k_mat, const Matrix<T>& v_mat,
                      Index j, Index head_dim, float scale, float gate, bool use_gate,
                      OnlineSoftmaxRow& osr, float* GPA_RESTRICT acc,
                      const simd::VecOps& vo) {
  fold_edge_rows(qi, k_mat.row(j), v_mat.row(j), head_dim, scale, gate, use_gate, osr, acc, vo);
}

/// The row-parallel driver. `row_enum(i, edge)` must call
/// `edge(j, gate)` for every neighbor j of row i (gate is the mask value
/// for explicit formats, 1.0f otherwise).
template <typename T, typename RowEnum>
void run_rows(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
              const AttentionOptions& opts, SoftmaxState& state, RowEnum&& row_enum) {
  check_inputs(q, k, v, state);
  const Index seq_len = q.rows();
  const Index head_dim = q.cols();
  const float scale = resolve_scale(opts.scale, head_dim);
  const bool use_gate = opts.use_mask_values;
  const simd::VecOps& vo = simd::ops(opts.policy.simd);  // resolved once per call

  parallel_for(0, seq_len, opts.policy, [&](Index i) {
    const T* qi = q.row(i);
    float* acc = state.acc_row(i);
    OnlineSoftmaxRow osr{state.m(i), state.l(i)};
    row_enum(i, [&](Index j, float gate) {
      fold_edge(qi, k, v, j, head_dim, scale, gate, use_gate, osr, acc, vo);
    });
    state.m(i) = osr.m;
    state.l(i) = osr.l;
  });
}

/// Traversal-driven driver: resolves Schedule::Auto from the mask's
/// degree/skew statistics, then runs the generic row loop over the
/// traversal's enumeration. Every kernel TU routes through this, so
/// auto-tuned scheduling needs zero per-kernel code.
template <typename T>
void run_rows(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
              const AttentionOptions& opts, SoftmaxState& state, const MaskTraversal& tr) {
  AttentionOptions o = opts;
  o.policy = tr.resolved_policy(opts.policy, q.rows(), opts.causal);
  run_rows(q, k, v, o, state, traversal_rows(tr, q.rows(), opts.causal));
}

/// Composition form (composed_attention): one row-parallel pass folding
/// every component per row, schedule resolved over the components'
/// summed degree profile.
template <typename T>
void run_rows(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
              const AttentionOptions& opts, SoftmaxState& state,
              const std::vector<MaskTraversal>& components) {
  AttentionOptions o = opts;
  const Index seq_len = q.rows();
  o.policy = gpa::resolved_policy(opts.policy, components, seq_len, opts.causal);
  run_rows(q, k, v, o, state, [&](Index i, auto&& edge) {
    for (const MaskTraversal& tr : components) {
      tr.for_each_edge(i, seq_len, opts.causal, edge);
    }
  });
}

}  // namespace gpa::detail
