#include "core/traversal.hpp"

#include <utility>

#include "common/fnv1a.hpp"
#include "core/batched.hpp"
#include "parallel/auto_tune.hpp"
#include "sparse/presets.hpp"

namespace gpa {

MaskTraversal MaskTraversal::csr(std::shared_ptr<const Csr<float>> mask) {
  GPA_CHECK(mask != nullptr, "CSR traversal needs a mask");
  MaskTraversal t = over(*mask);
  t.owner_ = std::move(mask);
  t.csr_ = static_cast<const Csr<float>*>(t.owner_.get());
  return t;
}

MaskTraversal MaskTraversal::coo(std::shared_ptr<const Coo<float>> mask, CooSearch search) {
  GPA_CHECK(mask != nullptr, "COO traversal needs a mask");
  MaskTraversal t = over(*mask, search);
  t.owner_ = std::move(mask);
  t.coo_ = static_cast<const Coo<float>*>(t.owner_.get());
  return t;
}

MaskTraversal MaskTraversal::local(LocalParams p) {
  GPA_CHECK(p.window >= 1, "local window must be >= 1");
  MaskTraversal t;
  t.kind_ = Kind::Local;
  t.local_ = p;
  return t;
}

MaskTraversal MaskTraversal::dilated1d(Dilated1DParams p) {
  GPA_CHECK(p.window >= 1 && p.dilation >= 0, "bad dilated-1D parameters");
  MaskTraversal t;
  t.kind_ = Kind::Dilated1d;
  t.dilated_ = p;
  return t;
}

MaskTraversal MaskTraversal::dilated2d(Dilated2DParams p) {
  GPA_CHECK(p.seq_len >= 1 && p.block >= 1 && p.seq_len % p.block == 0 && p.dilation >= 0,
            "bad dilated-2D parameters");
  MaskTraversal t;
  t.kind_ = Kind::Dilated2d;
  t.dilated2_ = p;
  return t;
}

MaskTraversal MaskTraversal::global(GlobalMinusLocalParams p) {
  GPA_CHECK(p.local.window >= 1, "global kernel's subtracted window must be >= 1");
  MaskTraversal t;
  t.kind_ = Kind::Global;
  t.global_ = std::move(p);
  return t;
}

MaskTraversal MaskTraversal::over(const Csr<float>& mask) {
  MaskTraversal t;
  t.kind_ = Kind::Csr;
  t.csr_ = &mask;
  return t;
}

MaskTraversal MaskTraversal::over(const Coo<float>& mask, CooSearch search) {
  MaskTraversal t;
  t.kind_ = Kind::Coo;
  t.coo_ = &mask;
  t.coo_search_ = search;
  return t;
}

std::vector<Index> MaskTraversal::degrees(Index seq_len, bool causal) const {
  std::vector<Index> d(static_cast<std::size_t>(seq_len));
  for (Index i = 0; i < seq_len; ++i) {
    d[static_cast<std::size_t>(i)] = row_degree(i, seq_len, causal);
  }
  return d;
}

DegreeStats MaskTraversal::stats(Index seq_len, bool causal) const {
  return degree_stats(degrees(seq_len, causal));
}

ExecPolicy MaskTraversal::resolved_policy(const ExecPolicy& p, Index seq_len,
                                          bool causal) const {
  if (p.schedule != Schedule::Auto) return p;
  const DegreeStats st = stats(seq_len, causal);
  return auto_tune(p, st.mean, st.imbalance);
}

ExecPolicy resolved_policy(const ExecPolicy& p, const std::vector<MaskTraversal>& components,
                           Index seq_len, bool causal) {
  if (p.schedule != Schedule::Auto) return p;
  std::vector<Index> sum(static_cast<std::size_t>(seq_len), 0);
  for (const MaskTraversal& tr : components) {
    const std::vector<Index> d = tr.degrees(seq_len, causal);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += d[i];
  }
  const DegreeStats st = degree_stats(sum);
  return auto_tune(p, st.mean, st.imbalance);
}

std::uint64_t MaskTraversal::fingerprint() const {
  Fnv1a f;
  f.mix(static_cast<std::uint64_t>(kind_));
  switch (kind_) {
    case Kind::Csr:
      // Delegate to the canonical CSR fingerprint so a traversal-derived
      // BatchKey agrees with one computed straight from the mask.
      f.mix(mask_fingerprint(*csr_));
      break;
    case Kind::Coo: {
      f.mix(static_cast<std::uint64_t>(coo_->rows));
      f.mix(static_cast<std::uint64_t>(coo_->cols));
      f.mix(coo_->nnz());
      for (const Index r : coo_->row_idx) f.mix(static_cast<std::uint64_t>(r));
      for (const Index c : coo_->col_idx) f.mix(static_cast<std::uint64_t>(c));
      break;
    }
    case Kind::Local:
      f.mix(static_cast<std::uint64_t>(local_.window));
      break;
    case Kind::Dilated1d:
      f.mix(static_cast<std::uint64_t>(dilated_.window));
      f.mix(static_cast<std::uint64_t>(dilated_.dilation));
      break;
    case Kind::Dilated2d:
      f.mix(static_cast<std::uint64_t>(dilated2_.seq_len));
      f.mix(static_cast<std::uint64_t>(dilated2_.block));
      f.mix(static_cast<std::uint64_t>(dilated2_.dilation));
      break;
    case Kind::Global:
      f.mix(static_cast<std::uint64_t>(global_.local.window));
      f.mix(static_cast<std::uint64_t>(global_.global.tokens.size()));
      for (const Index t : global_.global.tokens) f.mix(static_cast<std::uint64_t>(t));
      break;
  }
  return f.h;
}

std::vector<MaskTraversal> traversals_of(const ComposedMask& mask, bool owning) {
  // An explicit component is viewed in place for a one-shot kernel call
  // and copied into shared ownership when the traversal must outlive the
  // ComposedMask (a session holds its mask for its whole lifetime).
  // ComposedMask components are public fields, so a caller-assembled
  // composition is validated here with the same typed errors the
  // per-component kernels used to raise — a bad token index or
  // mis-shaped component CSR must throw, not read out of bounds.
  const auto explicit_csr = [owning, &mask](const Csr<float>& c) {
    GPA_CHECK(c.rows == mask.seq_len && c.cols == mask.seq_len,
              "composed component CSR shape mismatch");
    return owning ? MaskTraversal::csr(std::make_shared<const Csr<float>>(c))
                  : MaskTraversal::over(c);
  };
  std::vector<MaskTraversal> ts;
  ts.reserve(mask.components.size());
  for (const MaskComponent& c : mask.components) {
    switch (c.kind) {
      case MaskComponent::Kind::Local:
        ts.push_back(MaskTraversal::local(c.local));
        break;
      case MaskComponent::Kind::Dilated1D:
        ts.push_back(MaskTraversal::dilated1d(c.dilated));
        break;
      case MaskComponent::Kind::GlobalMinusLocal:
        // The dilated-Longformer preset subtracts a non-window component
        // from the global mask, which the implicit family cannot
        // express; those components carry their exact edges in c.csr.
        if (c.global.local.window > 1) {
          for (const Index t : c.global.global.tokens) {
            GPA_CHECK(t >= 0 && t < mask.seq_len, "global token index out of range");
          }
          ts.push_back(MaskTraversal::global(c.global));
        } else {
          ts.push_back(explicit_csr(c.csr));
        }
        break;
      case MaskComponent::Kind::RandomCsr:
        ts.push_back(explicit_csr(c.csr));
        break;
    }
  }
  return ts;
}

}  // namespace gpa
