#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "graph/neighbors.hpp"

namespace gpa {

template <typename T>
void coo_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                              const Coo<float>& mask, SoftmaxState& state,
                              const AttentionOptions& opts) {
  GPA_CHECK(mask.rows == q.rows() && mask.cols == k.rows(), "COO mask shape mismatch");
  detail::run_rows(q, k, v, opts, state, [&](Index i, auto&& edge) {
    // Each row first locates its extent within the coordinate arrays.
    // The paper's kernel does this with a scan from index zero, which is
    // exactly the cost §V-C blames for COO's poor microbenchmark
    // performance; Binary is the ablation repair.
    const CooRowBounds b = opts.coo_search == CooSearch::Linear
                               ? coo_row_bounds_linear(mask, i)
                               : coo_row_bounds_binary(mask, i);
    for (Index kk = b.first; kk < b.last; ++kk) {
      const Index j = mask.col_idx[static_cast<std::size_t>(kk)];
      if (opts.causal && j > i) break;  // columns sorted within the row
      edge(j, mask.values[static_cast<std::size_t>(kk)]);
    }
  });
}

template <typename T>
void coo_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                   const Coo<float>& mask, Matrix<T>& out, const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  coo_attention_accumulate(q, k, v, mask, state, opts);
  state.finalize_into(out);
}

template void coo_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                       const Matrix<float>&, const Coo<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void coo_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                       const Matrix<half_t>&, const Coo<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void coo_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                            const Coo<float>&, Matrix<float>&, const AttentionOptions&);
template void coo_attention(const Matrix<half_t>&, const Matrix<half_t>&, const Matrix<half_t>&,
                            const Coo<float>&, Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
