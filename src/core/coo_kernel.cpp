#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void coo_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                              const Coo<float>& mask, SoftmaxState& state,
                              const AttentionOptions& opts) {
  GPA_CHECK(mask.rows == q.rows() && mask.cols == k.rows(), "COO mask shape mismatch");
  const MaskTraversal tr = MaskTraversal::over(mask, opts.coo_search);
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void coo_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                   const Coo<float>& mask, Matrix<T>& out, const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  coo_attention_accumulate(q, k, v, mask, state, opts);
  state.finalize_into(out);
}

template void coo_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                       const Matrix<float>&, const Coo<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void coo_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                       const Matrix<half_t>&, const Coo<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void coo_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                            const Coo<float>&, Matrix<float>&, const AttentionOptions&);
template void coo_attention(const Matrix<half_t>&, const Matrix<half_t>&, const Matrix<half_t>&,
                            const Coo<float>&, Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
