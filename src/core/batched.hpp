#pragma once
// Batched attention — the second of the paper's two "trivial" scaling
// axes (§IV-B: "Both algorithms are single-batch and single-headed...
// though it is trivial to scale"). Every sequence in the batch shares
// one mask (how sparse transformers deploy: the pattern is architecture,
// not data) and runs through the same kernel.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/attention_options.hpp"
#include "core/multihead.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// One batch of equally-shaped sequences.
template <typename T>
using Batch = std::vector<Matrix<T>>;

/// Structural fingerprint of a CSR mask (FNV-1a over shape, offsets and
/// columns; values excluded — batching compatibility is about which
/// edges a kernel visits, not their weights). Two requests may share a
/// batch only when their masks fingerprint identically.
std::uint64_t mask_fingerprint(const Csr<float>& mask);

/// Compatibility key for dynamic batching: requests coalesce into one
/// kernel dispatch iff their keys compare equal. seq_len is exact (a
/// mask is L×L, so padding a shorter request under a longer mask would
/// let its rows attend columns past the real sequence).
///
/// `kind` discriminates dispatch families that must never share a
/// kernel loop even when shapes agree — the serving layer maps its
/// RequestKind here (0 = one-shot attention, 1 = incremental decode,
/// 2 = causal pattern attention with bucketed seq_len).
/// Decode steps set seq_len = 0 and mask_fp = 0: each step is one row
/// against its own session's cache, so steps from *different sessions*
/// at *different lengths* still coalesce into one dispatch — exactly
/// the cross-session batching the KV cache exists to enable.
/// Pattern requests (kind 2) relax seq_len to a configured BUCKET
/// ceiling: their causal row slices are length-independent and each
/// item dispatches at its own true length, so near-length requests
/// coalesce without padding or approximation.
struct BatchKey {
  std::uint64_t mask_fp = 0;
  Index seq_len = 0;
  Index width = 0;  ///< packed columns (num_heads · head_dim)
  Index heads = 1;
  DType dtype = DType::F32;
  std::uint8_t kind = 0;  ///< dispatch family (see above)

  friend bool operator==(const BatchKey& a, const BatchKey& b) {
    return a.mask_fp == b.mask_fp && a.seq_len == b.seq_len && a.width == b.width &&
           a.heads == b.heads && a.dtype == b.dtype && a.kind == b.kind;
  }
  friend bool operator!=(const BatchKey& a, const BatchKey& b) { return !(a == b); }

  /// Mixes every field into one value (for hash maps / histograms).
  std::uint64_t hash() const noexcept;
};

/// Runs `kernel` on every (q, k, v) triple of the batch. Outputs are
/// resized to match. The batch items are independent, so any internal
/// row-parallelism of the kernel composes with looping here.
template <typename T>
void batched_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                       const HeadKernel<T>& kernel, Batch<T>& out,
                       const AttentionOptions& opts = {});

/// Convenience: batched single-head CSR attention over a shared mask.
template <typename T>
void batched_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                           const Csr<float>& mask, Batch<T>& out,
                           const AttentionOptions& opts = {});

/// Convenience: batched multi-head CSR attention over a shared mask.
template <typename T>
void batched_multihead_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                                     const MultiHeadDims& dims, const Csr<float>& mask,
                                     Batch<T>& out, const AttentionOptions& opts = {});

// --- Preallocated-output variants (no-realloc contract) --------------
// For callers that own whole batches and dispatch repeatedly — eval /
// training pipelines cycling buffer sets, or anything serving-adjacent
// that must not allocate per dispatch. These variants never allocate:
// `out` must already hold q.size() matrices of matching shape
// (GPA_CHECK otherwise). (src/serve itself dispatches per-item over
// shared payloads it cannot form an owned Batch from, but honours the
// same contract by writing into each request's preallocated output.)

template <typename T>
void batched_attention_into(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                            const HeadKernel<T>& kernel, Batch<T>& out,
                            const AttentionOptions& opts = {});

template <typename T>
void batched_csr_attention_into(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                                const Csr<float>& mask, Batch<T>& out,
                                const AttentionOptions& opts = {});

template <typename T>
void batched_multihead_csr_attention_into(const Batch<T>& q, const Batch<T>& k,
                                          const Batch<T>& v, const MultiHeadDims& dims,
                                          const Csr<float>& mask, Batch<T>& out,
                                          const AttentionOptions& opts = {});

}  // namespace gpa
