#pragma once
// Batched attention — the second of the paper's two "trivial" scaling
// axes (§IV-B: "Both algorithms are single-batch and single-headed...
// though it is trivial to scale"). Every sequence in the batch shares
// one mask (how sparse transformers deploy: the pattern is architecture,
// not data) and runs through the same kernel.

#include <functional>
#include <vector>

#include "core/attention_options.hpp"
#include "core/multihead.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"
#include "tensor/matrix.hpp"

namespace gpa {

/// One batch of equally-shaped sequences.
template <typename T>
using Batch = std::vector<Matrix<T>>;

/// Runs `kernel` on every (q, k, v) triple of the batch. Outputs are
/// resized to match. The batch items are independent, so any internal
/// row-parallelism of the kernel composes with looping here.
template <typename T>
void batched_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                       const HeadKernel<T>& kernel, Batch<T>& out,
                       const AttentionOptions& opts = {});

/// Convenience: batched single-head CSR attention over a shared mask.
template <typename T>
void batched_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                           const Csr<float>& mask, Batch<T>& out,
                           const AttentionOptions& opts = {});

/// Convenience: batched multi-head CSR attention over a shared mask.
template <typename T>
void batched_multihead_csr_attention(const Batch<T>& q, const Batch<T>& k, const Batch<T>& v,
                                     const MultiHeadDims& dims, const Csr<float>& mask,
                                     Batch<T>& out, const AttentionOptions& opts = {});

}  // namespace gpa
