#include "core/graph_attention.hpp"
#include "core/kernel_common.hpp"
#include "core/traversal.hpp"

namespace gpa {

template <typename T>
void csr_attention_accumulate(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                              const Csr<float>& mask, SoftmaxState& state,
                              const AttentionOptions& opts) {
  GPA_CHECK(mask.rows == q.rows() && mask.cols == k.rows(), "CSR mask shape mismatch");
  const MaskTraversal tr = MaskTraversal::over(mask);
  detail::run_rows(q, k, v, opts, state, tr);  // Schedule::Auto resolves from tr's skew stats
}

template <typename T>
void csr_attention(const Matrix<T>& q, const Matrix<T>& k, const Matrix<T>& v,
                   const Csr<float>& mask, Matrix<T>& out, const AttentionOptions& opts) {
  SoftmaxState state(q.rows(), v.cols());
  csr_attention_accumulate(q, k, v, mask, state, opts);
  state.finalize_into(out);
}

template void csr_attention_accumulate(const Matrix<float>&, const Matrix<float>&,
                                       const Matrix<float>&, const Csr<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void csr_attention_accumulate(const Matrix<half_t>&, const Matrix<half_t>&,
                                       const Matrix<half_t>&, const Csr<float>&, SoftmaxState&,
                                       const AttentionOptions&);
template void csr_attention(const Matrix<float>&, const Matrix<float>&, const Matrix<float>&,
                            const Csr<float>&, Matrix<float>&, const AttentionOptions&);
template void csr_attention(const Matrix<half_t>&, const Matrix<half_t>&, const Matrix<half_t>&,
                            const Csr<float>&, Matrix<half_t>&, const AttentionOptions&);

}  // namespace gpa
