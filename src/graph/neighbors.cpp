#include "graph/neighbors.hpp"

namespace gpa {

CooRowBounds coo_row_bounds_linear(const Coo<float>& mask, Index i) {
  const Index n = static_cast<Index>(mask.nnz());
  Index k = 0;
  while (k < n && mask.row_idx[static_cast<std::size_t>(k)] < i) ++k;
  Index last = k;
  while (last < n && mask.row_idx[static_cast<std::size_t>(last)] == i) ++last;
  return {k, last};
}

CooRowBounds coo_row_bounds_binary(const Coo<float>& mask, Index i) {
  const auto first = std::lower_bound(mask.row_idx.begin(), mask.row_idx.end(), i);
  const auto last = std::upper_bound(first, mask.row_idx.end(), i);
  return {static_cast<Index>(first - mask.row_idx.begin()),
          static_cast<Index>(last - mask.row_idx.begin())};
}

std::vector<Index> collect_local(Index i, Index seq_len, const LocalParams& p) {
  std::vector<Index> out;
  local_neighbors(i, seq_len, p, [&](Index j) { out.push_back(j); });
  return out;
}

std::vector<Index> collect_dilated1d(Index i, Index seq_len, const Dilated1DParams& p) {
  std::vector<Index> out;
  dilated1d_neighbors(i, seq_len, p, [&](Index j) { out.push_back(j); });
  return out;
}

std::vector<Index> collect_dilated2d(Index i, const Dilated2DParams& p) {
  std::vector<Index> out;
  dilated2d_neighbors(i, p, [&](Index j) { out.push_back(j); });
  return out;
}

std::vector<Index> collect_global_minus_local(Index i, Index seq_len,
                                              const GlobalMinusLocalParams& p) {
  std::vector<Index> out;
  global_minus_local_neighbors(i, seq_len, p, [&](Index j) { out.push_back(j); });
  return out;
}

}  // namespace gpa
