#include "graph/degree.hpp"

#include <cmath>

#include "graph/neighbors.hpp"

namespace gpa {

DegreeStats degree_stats(const std::vector<Index>& degrees) {
  DegreeStats s;
  if (degrees.empty()) return s;
  s.min_degree = degrees.front();
  s.max_degree = degrees.front();
  double sum = 0.0;
  for (const Index d : degrees) {
    s.total += static_cast<Size>(d);
    sum += static_cast<double>(d);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.mean = sum / static_cast<double>(degrees.size());
  double var = 0.0;
  for (const Index d : degrees) {
    const double delta = static_cast<double>(d) - s.mean;
    var += delta * delta;
  }
  s.stddev = std::sqrt(var / static_cast<double>(degrees.size()));
  s.imbalance = s.mean > 0.0 ? static_cast<double>(s.max_degree) / s.mean : 0.0;
  return s;
}

std::vector<Index> csr_degrees(const Csr<float>& mask) {
  std::vector<Index> d(static_cast<std::size_t>(mask.rows));
  for (Index i = 0; i < mask.rows; ++i) d[static_cast<std::size_t>(i)] = mask.row_degree(i);
  return d;
}

namespace {
template <typename EnumFn>
std::vector<Index> count_rows(Index seq_len, EnumFn&& enumerate) {
  std::vector<Index> d(static_cast<std::size_t>(seq_len), 0);
  for (Index i = 0; i < seq_len; ++i) {
    Index count = 0;
    enumerate(i, [&](Index) { ++count; });
    d[static_cast<std::size_t>(i)] = count;
  }
  return d;
}
}  // namespace

std::vector<Index> local_degrees(Index seq_len, const LocalParams& p) {
  return count_rows(seq_len,
                    [&](Index i, auto&& fn) { local_neighbors(i, seq_len, p, fn); });
}

std::vector<Index> dilated1d_degrees(Index seq_len, const Dilated1DParams& p) {
  return count_rows(seq_len,
                    [&](Index i, auto&& fn) { dilated1d_neighbors(i, seq_len, p, fn); });
}

std::vector<Index> dilated2d_degrees(const Dilated2DParams& p) {
  return count_rows(p.seq_len, [&](Index i, auto&& fn) { dilated2d_neighbors(i, p, fn); });
}

std::vector<Index> global_minus_local_degrees(Index seq_len,
                                              const GlobalMinusLocalParams& p) {
  return count_rows(
      seq_len, [&](Index i, auto&& fn) { global_minus_local_neighbors(i, seq_len, p, fn); });
}

}  // namespace gpa
