#pragma once
// The paper's graph model (§IV-A): tokens are vertices, mask entries are
// directed edges. `Get_Neighbors(G, i, Pa)` enumerates the keys row i
// attends to. Implicit patterns compute neighbors from parameters in
// O(degree); explicit formats read them from CSR/COO storage. Each
// generator yields columns in ascending order and is a template over the
// visitor so kernels inline the enumeration (no virtual dispatch on the
// hot path — this *is* the "true sparsity" claim: work proportional to
// edges visited).

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa {

/// Local window: j in [i-w+1, i+w-1] ∩ [0, L).
template <typename Fn>
inline void local_neighbors(Index i, Index seq_len, const LocalParams& p, Fn&& visit) {
  const Index lo = std::max<Index>(0, i - (p.window - 1));
  const Index hi = std::min<Index>(seq_len - 1, i + (p.window - 1));
  for (Index j = lo; j <= hi; ++j) visit(j);
}

/// 1D dilation: distances 0, (r+1), 2(r+1), ... below w, both sides.
template <typename Fn>
inline void dilated1d_neighbors(Index i, Index seq_len, const Dilated1DParams& p, Fn&& visit) {
  const Index step = p.dilation + 1;
  const Index max_d = p.window - 1;
  for (Index d = (max_d / step) * step; d >= step; d -= step) {
    if (i - d >= 0) visit(i - d);
  }
  visit(i);
  for (Index d = step; d <= max_d; d += step) {
    if (i + d < seq_len) visit(i + d);
  }
}

/// 2D dilation (paper-verbatim predicate; see Dilated2DParams).
template <typename Fn>
inline void dilated2d_neighbors(Index i, const Dilated2DParams& p, Fn&& visit) {
  if ((i % p.block) % (p.dilation + 1) != 0) return;
  const Index g = p.group_size();
  const Index lo = (i / g) * g;
  for (Index j = lo; j < lo + g; ++j) {
    if ((j % p.block) % (p.dilation + 1) == 0) visit(j);
  }
}

/// Global-minus-local (§IV-B: "the local mask is subtracted from the
/// global"): edges of the global pattern not already covered by the
/// local window, so a local kernel followed by this one visits each
/// edge of the Longformer union exactly once.
template <typename Fn>
inline void global_minus_local_neighbors(Index i, Index seq_len,
                                         const GlobalMinusLocalParams& p, Fn&& visit) {
  const Index w = p.local.window;
  const Index win_lo = i - (w - 1);
  const Index win_hi = i + (w - 1);
  if (p.global.is_global(i)) {
    // Full row minus the window.
    for (Index j = 0; j < seq_len; ++j) {
      if (j < win_lo || j > win_hi) visit(j);
    }
  } else {
    // Only the global columns outside the window.
    for (const Index j : p.global.tokens) {
      if (j < win_lo || j > win_hi) visit(j);
    }
  }
}

/// Explicit CSR row: direct offset lookup (O(1) row location).
template <typename T, typename Fn>
inline void csr_neighbors(Index i, const Csr<T>& mask, Fn&& visit) {
  const Index e = mask.row_end(i);
  for (Index k = mask.row_begin(i); k < e; ++k) {
    visit(mask.col_idx[static_cast<std::size_t>(k)]);
  }
}

/// Row bounds [first, last) of row i inside a canonical COO array.
/// `linear` reproduces the paper's kernel, which scans from the start to
/// find its row ("the search cost grows as the algorithm strays farther
/// from row zero", §V-C) — this is what makes COO uncompetitive in
/// Fig. 3. The binary variant is the obvious repair, kept for the
/// ablation benchmark.
struct CooRowBounds {
  Index first;
  Index last;
};
CooRowBounds coo_row_bounds_linear(const Coo<float>& mask, Index i);
CooRowBounds coo_row_bounds_binary(const Coo<float>& mask, Index i);

/// Materialised neighbor lists (test/diagnostic convenience).
std::vector<Index> collect_local(Index i, Index seq_len, const LocalParams& p);
std::vector<Index> collect_dilated1d(Index i, Index seq_len, const Dilated1DParams& p);
std::vector<Index> collect_dilated2d(Index i, const Dilated2DParams& p);
std::vector<Index> collect_global_minus_local(Index i, Index seq_len,
                                              const GlobalMinusLocalParams& p);

}  // namespace gpa
