#pragma once
// Per-row degree statistics. §V-C explains the global kernel's slow
// scaling via work imbalance across rows ("the algorithm can only be as
// fast as its slowest block"); these statistics quantify that skew and
// feed the NNZ-balanced sequence partitioner (seqpar/).

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/patterns.hpp"

namespace gpa {

struct DegreeStats {
  Size total = 0;       ///< sum of degrees (graph edge count)
  Index min_degree = 0;
  Index max_degree = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// max/mean — 1.0 means perfectly balanced rows; the paper's global
  /// mask drives this toward L/g.
  double imbalance = 0.0;
};

DegreeStats degree_stats(const std::vector<Index>& degrees);

std::vector<Index> csr_degrees(const Csr<float>& mask);
std::vector<Index> local_degrees(Index seq_len, const LocalParams& p);
std::vector<Index> dilated1d_degrees(Index seq_len, const Dilated1DParams& p);
std::vector<Index> dilated2d_degrees(const Dilated2DParams& p);
std::vector<Index> global_minus_local_degrees(Index seq_len, const GlobalMinusLocalParams& p);

}  // namespace gpa
