// Longformer-style long-document encoder layer: multi-head attention
// with a sliding window plus global [CLS]-like tokens, executed as the
// paper runs it in Fig. 6 — a sequential chain of the local and global
// kernels sharing one online-softmax state — and cross-checked against
// the fused single-CSR call.
//
//   $ ./longformer_document [L] [heads] [head_dim]

#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "core/composed.hpp"
#include "core/multihead.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  const Index L = argc > 1 ? std::stoll(argv[1]) : 4096;
  const Index heads = argc > 2 ? std::stoll(argv[2]) : 4;
  const Index head_dim = argc > 3 ? std::stoll(argv[3]) : 32;
  const Index reach = 64;      // window reach per direction
  const Index num_global = 2;  // [CLS]-style tokens at positions 0, 1

  std::cout << "Longformer document layer: L=" << L << ", heads=" << heads
            << ", head_dim=" << head_dim << "\n";

  const auto preset = make_longformer(L, reach, num_global);
  std::cout << "mask: " << preset.name << ", Sf = " << preset.sparsity() << ", components:\n";
  for (const auto& c : preset.components) {
    std::cout << "  - " << c.name << " (nnz " << c.csr.nnz() << ")\n";
  }

  const Index width = heads * head_dim;
  Matrix<float> q(L, width), k(L, width), v(L, width), out(L, width), out_fused(L, width);
  Rng rng(7);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  // Sequential kernel chain per head (local ; global into one state).
  HeadKernel<float> chained = [&preset](const Matrix<float>& qh, const Matrix<float>& kh,
                                        const Matrix<float>& vh, Matrix<float>& oh,
                                        const AttentionOptions& o) {
    composed_attention(qh, kh, vh, preset, oh, o);
  };
  const auto t0 = std::chrono::steady_clock::now();
  multihead_attention(q, k, v, MultiHeadDims{heads, head_dim}, chained, out);
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "\nsequential local;global chain: "
            << std::chrono::duration<double>(t1 - t0).count() << " s\n";

  // Fused: one CSR kernel on the union mask.
  HeadKernel<float> fused = [&preset](const Matrix<float>& qh, const Matrix<float>& kh,
                                      const Matrix<float>& vh, Matrix<float>& oh,
                                      const AttentionOptions& o) {
    fused_csr_attention(qh, kh, vh, preset, oh, o);
  };
  const auto t2 = std::chrono::steady_clock::now();
  multihead_attention(q, k, v, MultiHeadDims{heads, head_dim}, fused, out_fused);
  const auto t3 = std::chrono::steady_clock::now();
  std::cout << "fused single-CSR call:         "
            << std::chrono::duration<double>(t3 - t2).count() << " s\n";

  const auto rep = allclose(out, out_fused, 1e-5, 1e-6);
  std::cout << "\nchain == fused: " << (rep.all_close ? "OK" : "FAIL") << " (max diff "
            << rep.max_abs_diff << ")\n";
  return rep.all_close ? 0 : 1;
}
