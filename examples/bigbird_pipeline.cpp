// BigBird-style attention (local + global + random) executed both ways
// the paper benchmarks in Fig. 6 — a three-kernel sequential chain and a
// single fused CSR call — then partitioned across a simulated cluster
// with the NNZ-balanced partitioner (§VI-A future work).
//
//   $ ./bigbird_pipeline [L]

#include <iostream>

#include "baselines/reference_attention.hpp"
#include "common/rng.hpp"
#include "core/composed.hpp"
#include "seqpar/partition.hpp"
#include "seqpar/sim_cluster.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  const Index L = argc > 1 ? std::stoll(argv[1]) : 2048;
  const Index dk = 64;

  const auto preset = make_bigbird(L, /*reach=*/16, /*num_global=*/3, /*random_sf=*/0.002);
  std::cout << "BigBird mask (L=" << L << "): Sf = " << preset.sparsity() << "\n";
  for (const auto& c : preset.components) {
    std::cout << "  - " << c.name << " (nnz " << c.csr.nnz() << ")\n";
  }

  Matrix<float> q(L, dk), k(L, dk), v(L, dk);
  Rng rng(3);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  // Path 1: sequential kernel chain (local ; global ; random-CSR).
  Matrix<float> chained(L, dk);
  composed_attention(q, k, v, preset, chained);

  // Path 2: fused single CSR call on the union mask.
  Matrix<float> fused(L, dk);
  fused_csr_attention(q, k, v, preset, fused);

  const auto agree = allclose(chained, fused, 1e-5, 1e-6);
  std::cout << "\nsequential chain == fused CSR: " << (agree.all_close ? "OK" : "FAIL")
            << " (max diff " << agree.max_abs_diff << ")\n";

  // Exact-reference spot check.
  Matrix<float> expected(L, dk);
  baselines::reference_attention(q, k, v, preset.fused, expected);
  const auto correct = allclose(fused, expected, 1e-5, 1e-6);
  std::cout << "fused CSR == exact reference:  " << (correct.all_close ? "OK" : "FAIL")
            << " (max diff " << correct.max_abs_diff << ")\n";

  // Distributed execution across 4 simulated nodes.
  using namespace gpa::seqpar;
  const auto deg = degrees_of(preset.fused);
  for (const auto* name : {"uniform", "balanced"}) {
    const auto part = std::string(name) == "uniform"
                          ? partition_uniform_rows(L, 4, deg)
                          : partition_balanced_nnz(L, 4, deg);
    Matrix<float> dist(L, dk);
    const auto report = distributed_csr_attention(q, k, v, preset.fused, part, dist);
    const auto ok = allclose(dist, expected, 1e-5, 1e-6);
    std::cout << "\n4-node simulated cluster (" << name << " partition): "
              << (ok.all_close ? "OK" : "FAIL") << ", work imbalance "
              << part.imbalance() << ", makespan " << report.makespan_seconds << " s\n";
    for (const auto& nr : report.nodes) {
      std::cout << "  node " << nr.node << ": rows [" << nr.row_begin << ", " << nr.row_end
                << "), " << nr.edges << " edges, " << nr.seconds << " s\n";
    }
  }
  return agree.all_close && correct.all_close ? 0 : 1;
}
