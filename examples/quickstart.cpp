// Quickstart: build a sparse attention mask, run graph-processing
// attention, verify against the exact reference, and time it against the
// dense masked-SDP baseline.
//
//   $ ./quickstart [L] [dk]

#include <chrono>
#include <iostream>

#include "baselines/reference_attention.hpp"
#include "baselines/sdp_masked.hpp"
#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  const Index L = argc > 1 ? std::stoll(argv[1]) : 2048;
  const Index dk = argc > 2 ? std::stoll(argv[2]) : 64;

  std::cout << "Graph-Processing Attention quickstart (L=" << L << ", dk=" << dk << ")\n\n";

  // 1. Token projections — in a real transformer these come from the
  //    learned W_Q/W_K/W_V; here they are random, like the paper's
  //    verification setup.
  Matrix<float> q(L, dk), k(L, dk), v(L, dk);
  Rng rng(1);
  fill_uniform(q, rng);
  fill_uniform(k, rng);
  fill_uniform(v, rng);

  // 2. A sparse mask: sliding window of 32 tokens each direction.
  const LocalParams window{33};
  const auto mask = build_csr_local(L, window);
  std::cout << "mask: local window, nnz = " << mask.nnz()
            << ", sparsity factor = " << sparsity_factor(mask.nnz(), L) << "\n";

  // 3. Graph-processing attention over the mask — only the nnz edges
  //    are computed ("true sparsity").
  Matrix<float> out(L, dk);
  const auto t0 = std::chrono::steady_clock::now();
  csr_attention(q, k, v, mask, out);
  const auto t1 = std::chrono::steady_clock::now();
  const double graph_s = std::chrono::duration<double>(t1 - t0).count();
  std::cout << "csr graph attention:   " << graph_s << " s\n";

  // 3b. The same mask through the implicit local kernel (no explicit
  //     mask storage at all).
  Matrix<float> out_local(L, dk);
  const auto t2 = std::chrono::steady_clock::now();
  local_attention(q, k, v, window, out_local);
  const auto t3 = std::chrono::steady_clock::now();
  std::cout << "local graph attention: " << std::chrono::duration<double>(t3 - t2).count()
            << " s\n";

  // 4. Dense masked SDP (the PyTorch-style baseline): computes all L²
  //    dot products, then masks.
  Matrix<float> out_sdp(L, dk);
  const auto t4 = std::chrono::steady_clock::now();
  baselines::sdp_masked_attention(q, k, v, mask, out_sdp);
  const auto t5 = std::chrono::steady_clock::now();
  const double sdp_s = std::chrono::duration<double>(t5 - t4).count();
  std::cout << "dense masked SDP:      " << sdp_s << " s  (" << sdp_s / graph_s
            << "x slower)\n\n";

  // 5. Verify everything agrees (paper §V-A protocol).
  Matrix<float> expected(L, dk);
  baselines::reference_attention(q, k, v, mask, expected);
  const auto r1 = allclose(out, expected, 1e-5, 1e-6);
  const auto r2 = allclose(out_local, expected, 1e-5, 1e-6);
  const auto r3 = allclose(out_sdp, expected, 1e-5, 1e-6);
  std::cout << "verification vs exact reference:\n"
            << "  csr:   " << (r1.all_close ? "OK" : "FAIL") << " (max diff "
            << r1.max_abs_diff << ")\n"
            << "  local: " << (r2.all_close ? "OK" : "FAIL") << " (max diff "
            << r2.max_abs_diff << ")\n"
            << "  sdp:   " << (r3.all_close ? "OK" : "FAIL") << " (max diff "
            << r3.max_abs_diff << ")\n";
  return r1.all_close && r2.all_close && r3.all_close ? 0 : 1;
}
