// Mask explorer: renders every pattern from Figure 2 as ASCII art,
// reports NNZ / sparsity factor / degree statistics, and demonstrates
// the window-size-from-sparsity solvers the benchmarks use.
//
//   $ ./mask_explorer [L]   (L <= 64 recommended for readable output)

#include <iostream>

#include "graph/degree.hpp"
#include "sparse/build.hpp"
#include "sparse/nnz.hpp"
#include "sparse/presets.hpp"

namespace {

using namespace gpa;

void render(const char* title, const Csr<float>& mask) {
  const auto stats = degree_stats(csr_degrees(mask));
  std::cout << "\n" << title << "  (nnz " << mask.nnz() << ", Sf "
            << sparsity_factor(mask.nnz(), mask.rows) << ", max/mean degree "
            << stats.max_degree << "/" << stats.mean << ")\n";
  const auto dense = csr_to_dense(mask);
  for (Index i = 0; i < dense.rows(); ++i) {
    std::cout << "  ";
    for (Index j = 0; j < dense.cols(); ++j) std::cout << (dense(i, j) ? '#' : '.');
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Index L = argc > 1 ? std::stoll(argv[1]) : 32;

  render("local window (w=4)", build_csr_local(L, make_local(4)));
  render("1D dilated (w=8, r=1)", build_csr_dilated1d(L, make_dilated1d(8, 1)));
  render("2D dilated (b=8, r=1)", build_csr_dilated2d(make_dilated2d(L, 8, 1)));
  render("global tokens {0, L/2}", build_csr_global(L, make_global({0, L / 2}, L)));
  render("uniform random (Sf=0.1)", build_csr_random(L, RandomParams{0.1, 42}));

  const auto longformer = make_longformer(L, 3, 2);
  render("Longformer = local + global (Fig. 2 left)", longformer.fused);
  const auto bigbird = make_bigbird(L, 2, 2, 0.05);
  render("BigBird = local + global + random (Fig. 2 right)", bigbird.fused);

  std::cout << "\nwindow-from-sparsity solver:\n";
  for (const double sf : {0.5, 0.1, 0.05}) {
    const Index w = local_window_for_sparsity(L, sf);
    std::cout << "  target Sf " << sf << " -> local window " << w << " (actual Sf "
              << sparsity_factor(local_nnz(L, LocalParams{w}), L) << ")\n";
  }
  return 0;
}
