// A tiny sparse-attention transformer encoder: a stack of
// TransformerLayer blocks over a synthetic token sequence, showing the
// "integrate into an existing LLM" path end to end — embedding, N
// encoder layers with a BigBird mask, and a pooled classification
// readout.
//
//   $ ./tiny_encoder [L] [layers]

#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "nn/transformer_layer.hpp"
#include "sparse/nnz.hpp"
#include "sparse/presets.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  using namespace gpa::nn;
  const Index L = argc > 1 ? std::stoll(argv[1]) : 1024;
  const int num_layers = argc > 2 ? std::stoi(argv[2]) : 4;
  const Index d = 64;

  const auto preset = make_bigbird(L, /*reach=*/8, /*num_global=*/2, /*random_sf=*/0.004);
  std::cout << "Tiny encoder: L=" << L << ", " << num_layers << " layers, embed " << d
            << ", BigBird mask Sf = " << preset.sparsity() << "\n";

  TransformerLayerConfig cfg;
  cfg.embed_dim = d;
  cfg.num_heads = 4;
  cfg.ffn_dim = 4 * d;

  Rng rng(1234);
  std::vector<TransformerLayer> layers;
  Size params = 0;
  for (int l = 0; l < num_layers; ++l) {
    layers.emplace_back(cfg, preset.fused);
    layers.back().init(rng);
    params += layers.back().parameter_count();
  }
  std::cout << "parameters: " << params << "\n";

  // Synthetic token embeddings (a vocabulary of 16 random vectors).
  Matrix<float> vocab(16, d);
  fill_uniform(vocab, rng);
  Matrix<float> x(L, d);
  for (Index i = 0; i < L; ++i) {
    const Index tok = rng.next_index(0, 16);
    for (Index p = 0; p < d; ++p) {
      x(i, p) = vocab(tok, p) + 0.02f * std::sin(0.01f * static_cast<float>(i * (p + 1)));
    }
  }

  Matrix<float> y(L, d);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& layer : layers) {
    layer.forward(x, y);
    std::swap(x, y);
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::cout << "forward through " << num_layers << " layers: "
            << std::chrono::duration<double>(t1 - t0).count() << " s\n";

  // Pooled readout over the global token (position 0 is global in the
  // preset — the classification-token pattern).
  float norm = 0.0f;
  for (Index p = 0; p < d; ++p) norm += x(0, p) * x(0, p);
  std::cout << "pooled [CLS] representation L2 = " << std::sqrt(norm) << "\n";

  bool finite = true;
  for (Index i = 0; i < L && finite; ++i) {
    for (Index p = 0; p < d; ++p) {
      if (!std::isfinite(x(i, p))) {
        finite = false;
        break;
      }
    }
  }
  std::cout << "all activations finite: " << (finite ? "yes" : "NO") << "\n";
  return finite ? 0 : 1;
}
