// Ultra-long genomic sequence modeling — the paper's motivating workload
// (§I cites HyenaDNA: genomics needs 4-5 orders of magnitude more
// context). A synthetic nucleotide token stream is embedded and run
// through dilated attention with the LongNet sparsity rule (Sf = C/L),
// in fp16 storage like Table III, and the memory model reports how far
// the same configuration scales on the paper's GPUs.
//
//   $ ./genomics_ultralong [L]

#include <chrono>
#include <iostream>

#include "common/rng.hpp"
#include "core/graph_attention.hpp"
#include "memmodel/memory_model.hpp"
#include "sparse/nnz.hpp"
#include "tensor/tensor_ops.hpp"

int main(int argc, char** argv) {
  using namespace gpa;
  const Index L = argc > 1 ? std::stoll(argv[1]) : 65'536;
  const Index dk = 64;

  std::cout << "Ultra-long genomics attention demo (L=" << L << ", dk=" << dk << ", fp16)\n\n";

  // Synthetic DNA: tokens over {A, C, G, T} embedded as fixed random
  // per-base vectors plus positional noise — enough structure to
  // exercise the exact code path a nucleotide model would.
  Rng rng(99);
  Matrix<float> base_embed(4, dk);
  fill_uniform(base_embed, rng);
  Matrix<half_t> q(L, dk), k(L, dk), v(L, dk);
  for (Index i = 0; i < L; ++i) {
    const Index base = rng.next_index(0, 4);
    for (Index p = 0; p < dk; ++p) {
      const float e = base_embed(base, p) + 0.01f * rng.next_float();
      q(i, p) = half_t(e);
      k(i, p) = half_t(e * 0.9f + 0.05f);
      v(i, p) = half_t(e * 1.1f);
    }
  }

  // LongNet rule: Sf = 2730/L, realised as a dilated window (r = 1).
  const double sf = longnet_sparsity_rule(L);
  const Dilated1DParams dil{dilated1d_window_for_sparsity(L, 1, sf), 1};
  const double actual_sf = sparsity_factor(dilated1d_nnz(L, dil), L);
  std::cout << "LongNet rule: Sf = " << sf << " -> dilated window " << dil.window
            << " (r=1), actual Sf = " << actual_sf << "\n";

  Matrix<half_t> out(L, dk);
  const auto t0 = std::chrono::steady_clock::now();
  dilated1d_attention(q, k, v, dil, out);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  const double edges = actual_sf * static_cast<double>(L) * static_cast<double>(L);
  std::cout << "dilated attention over " << static_cast<Size>(edges)
            << " edges: " << secs << " s (" << edges / secs / 1e6 << " M edges/s)\n\n";

  // How far does this configuration scale on the paper's hardware?
  using namespace gpa::memmodel;
  const ModelConfig cfg{DType::F16, dk, 1, sf};
  std::cout << "memory-model max context for this configuration:\n";
  for (const auto& dev :
       {DeviceSpec::v100_32gb(), DeviceSpec::l40_48gb(), DeviceSpec::a100_80gb()}) {
    std::cout << "  " << dev.name << ": dilated-1d "
              << max_context_length(Algo::Dilated1D, dev, cfg) << " tokens vs dense SDP "
              << max_context_length(Algo::SdpMasked, dev, cfg) << "\n";
  }
  std::cout << "\n(§VI-B: ~32 such GPUs reach the 1-billion-token genomics target.)\n";
  return 0;
}
